"""The phase-pipelined ``compile_many`` and the expansion cache.

Three contracts from the resumable-saturation work:

- the staged (phase-pipelined) ``compile_many`` and the legacy
  one-worker-per-kernel fan-out produce **byte-identical** results to
  the serial loop — they run the same ``_advance_round``/pass code,
  and these tests are the differential proof;
- a failing kernel in a batch surfaces as
  :class:`~repro.compiler.pipeline.KernelCompileError` naming the
  kernel, its spec hash, and the failing stage — and survives the
  process-pool pickle hop;
- expansion-cache entries that are corrupt or schema-mismatched are
  tracer-logged *misses* that trigger a clean rebuild (and overwrite),
  never a wrong answer.
"""

from __future__ import annotations

import pickle

import pytest

from repro.compiler.frontend import trace_kernel
from repro.compiler.pipeline import KernelCompileError, compile_many
from repro.core.cache import (
    ExpansionCache,
    expansion_cache_dir,
    expansion_cache_from_env,
)
from repro.kernels.specs import kernel_spec_hash
from repro.obs import ListSink, Tracer, use_tracer


@pytest.fixture(scope="module")
def vadd_program(spec):
    return trace_kernel(
        "vadd",
        lambda x, y: [x[i] + y[i] for i in range(4)],
        {"x": 4, "y": 4},
        spec.vector_width,
    )


@pytest.fixture(scope="module")
def vmul_program(spec):
    return trace_kernel(
        "vmul",
        lambda x, y: [x[i] * y[i] for i in range(4)],
        {"x": 4, "y": 4},
        spec.vector_width,
    )


@pytest.fixture()
def clean_env(monkeypatch):
    """No ambient cache/checkpoint/legacy flags leak into a test."""
    for name in (
        "REPRO_EXPANSION_CACHE",
        "REPRO_CHECKPOINT_DIR",
        "REPRO_LEGACY_PIPELINE",
    ):
        monkeypatch.delenv(name, raising=False)
    return monkeypatch


def _fingerprint(kernel):
    """Everything that must agree between serial and staged compiles."""
    return {
        "name": kernel.name,
        "compiled": str(kernel.compiled_term),
        "final_cost": kernel.report.final_cost,
        "initial_cost": kernel.report.initial_cost,
        "n_rounds": len(kernel.report.rounds),
        "passes": [p.name for p in kernel.report.passes],
        "n_instructions": len(kernel.machine_program.instrs),
    }


class TestStagedParity:
    """Serial ≡ staged ≡ legacy, proven on real compiles."""

    def test_staged_and_legacy_match_serial(
        self, isaria_compiler, vadd_program, vmul_program, clean_env
    ):
        programs = [vadd_program, vmul_program]
        serial = [
            _fingerprint(k)
            for k in compile_many(isaria_compiler, programs)
        ]

        clean_env.setenv("REPRO_PARALLEL", "2")
        staged = [
            _fingerprint(k)
            for k in compile_many(isaria_compiler, programs, jobs=2)
        ]
        assert staged == serial

        clean_env.setenv("REPRO_LEGACY_PIPELINE", "1")
        legacy = [
            _fingerprint(k)
            for k in compile_many(isaria_compiler, programs, jobs=2)
        ]
        assert legacy == serial

    def test_staged_serial_degrade_matches_too(
        self, isaria_compiler, vadd_program, vmul_program, clean_env
    ):
        # REPRO_PARALLEL=0: the pipelined path must degrade to an
        # in-process loop and still produce identical results.
        programs = [vadd_program, vmul_program]
        serial = [
            _fingerprint(k)
            for k in compile_many(isaria_compiler, programs)
        ]
        clean_env.setenv("REPRO_PARALLEL", "0")
        staged = [
            _fingerprint(k)
            for k in compile_many(isaria_compiler, programs, jobs=2)
        ]
        assert staged == serial


class TestKernelCompileError:
    def _failing_compiler(self, compiler, monkeypatch):
        def explode(original, compiled):
            raise ValueError("synthetic validation failure")

        monkeypatch.setattr(compiler, "validate_equivalence", explode)
        return compiler

    def test_serial_batch_names_the_failing_kernel(
        self, isaria_compiler, vadd_program, clean_env
    ):
        compiler = self._failing_compiler(isaria_compiler, clean_env)
        with pytest.raises(KernelCompileError) as excinfo:
            compile_many(compiler, [vadd_program], validate=True)
        err = excinfo.value
        assert err.kernel_key == "vadd"
        assert err.spec_hash == kernel_spec_hash(vadd_program)
        assert "synthetic validation failure" in err.message
        assert "vadd" in str(err) and err.spec_hash in str(err)

    def test_staged_batch_names_kernel_and_stage(
        self, isaria_compiler, vadd_program, vmul_program, clean_env
    ):
        compiler = self._failing_compiler(isaria_compiler, clean_env)
        clean_env.setenv("REPRO_PARALLEL", "0")  # staged, in-process
        with pytest.raises(KernelCompileError) as excinfo:
            compile_many(
                compiler, [vadd_program, vmul_program],
                validate=True, jobs=2,
            )
        err = excinfo.value
        assert err.kernel_key == "vadd"
        assert err.stage == "finish"  # validation runs in the finish stage
        assert err.spec_hash == kernel_spec_hash(vadd_program)

    def test_error_survives_pickling(self):
        err = KernelCompileError("qprod", "ab12" * 4, "round2", "boom")
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, KernelCompileError)
        assert clone.kernel_key == "qprod"
        assert clone.spec_hash == "ab12" * 4
        assert clone.stage == "round2"
        assert str(clone) == str(err)


class TestSpecHash:
    def test_hash_is_stable_and_content_addressed(
        self, vadd_program, vmul_program
    ):
        h = kernel_spec_hash(vadd_program)
        assert h == kernel_spec_hash(vadd_program)
        assert len(h) == 16
        assert h != kernel_spec_hash(vmul_program)


class TestExpansionCacheEnv:
    def test_unset_or_falsy_disables(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXPANSION_CACHE", raising=False)
        assert expansion_cache_from_env() is None
        monkeypatch.setenv("REPRO_EXPANSION_CACHE", "0")
        assert expansion_cache_from_env() is None

    def test_truthy_literal_uses_registry_subdir(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPANSION_CACHE", "1")
        cache = expansion_cache_from_env()
        assert cache is not None
        assert cache.root == expansion_cache_dir()
        assert cache.root.name == "expansion"

    def test_path_value_is_the_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_EXPANSION_CACHE", str(tmp_path / "c"))
        cache = expansion_cache_from_env()
        assert cache.root == tmp_path / "c"

    def test_phase_key_hashes_every_input(self):
        base = ("expansion", "term:abc", "r1", "l1", "none", False)
        key = ExpansionCache.phase_key(*base)
        assert key == ExpansionCache.phase_key(*base)
        for i, changed in enumerate(
            [
                ("compilation", "term:abc", "r1", "l1", "none", False),
                ("expansion", "term:xyz", "r1", "l1", "none", False),
                ("expansion", "term:abc", "r2", "l1", "none", False),
                ("expansion", "term:abc", "r1", "l2", "none", False),
                ("expansion", "term:abc", "r1", "l1", "s1", False),
                ("expansion", "term:abc", "r1", "l1", "none", True),
            ]
        ):
            assert ExpansionCache.phase_key(*changed) != key, i


class TestExpansionCacheCompiles:
    def test_warm_compile_is_byte_identical_and_cached(
        self, isaria_compiler, vadd_program, clean_env, tmp_path
    ):
        clean_env.setenv("REPRO_EXPANSION_CACHE", str(tmp_path))
        cold = isaria_compiler.compile_kernel(vadd_program)
        entries = list(tmp_path.glob("*.snap"))
        assert entries  # every phase boundary stored

        warm = isaria_compiler.compile_kernel(vadd_program)
        assert str(warm.compiled_term) == str(cold.compiled_term)
        assert warm.report.final_cost == cold.report.final_cost
        # The warm run answered phases from the cache: the stand-in
        # runner reports are flagged and carry no iteration details.
        cached_phases = [
            phase
            for r in warm.report.rounds
            for phase in (r.expansion, r.compilation)
            if phase is not None and phase.cached
        ]
        assert cached_phases
        assert all(p.n_iterations == 0 for p in cached_phases)
        assert warm.report.optimization.cached

    def test_corrupt_entries_are_logged_misses_with_clean_rebuild(
        self, isaria_compiler, vadd_program, clean_env, tmp_path
    ):
        clean_env.setenv("REPRO_EXPANSION_CACHE", str(tmp_path))
        cold = isaria_compiler.compile_kernel(vadd_program)
        entries = sorted(tmp_path.glob("*.snap"))
        assert entries
        for path in entries:
            path.write_bytes(b"RSNP1\ngarbage that is not json\nxx")

        sink = ListSink()
        with use_tracer(Tracer(sink)):
            rebuilt = isaria_compiler.compile_kernel(vadd_program)
        # Same answer as the cold compile, never an error.
        assert str(rebuilt.compiled_term) == str(cold.compiled_term)
        names = [e["name"] for e in sink.events]
        assert "expansion_cache.corrupt" in names
        # The rebuild overwrote the bad entries with loadable ones.
        assert "expansion_cache.store" in names
        cache = ExpansionCache(tmp_path)
        stats = cache.stats()
        assert stats["corrupt"] == 0
        assert stats["entries"] == len(entries)
        assert "vadd" in stats["kernels"]

    def test_schema_mismatch_is_a_miss(
        self, isaria_compiler, vadd_program, clean_env, tmp_path
    ):
        clean_env.setenv("REPRO_EXPANSION_CACHE", str(tmp_path))
        cold = isaria_compiler.compile_kernel(vadd_program)
        for path in tmp_path.glob("*.snap"):
            magic, meta, body = path.read_bytes().split(b"\n", 2)
            meta = meta.replace(b'"schema":1', b'"schema":999')
            path.write_bytes(b"\n".join([magic, meta, body]))

        sink = ListSink()
        with use_tracer(Tracer(sink)):
            rebuilt = isaria_compiler.compile_kernel(vadd_program)
        assert str(rebuilt.compiled_term) == str(cold.compiled_term)
        assert "expansion_cache.corrupt" in [
            e["name"] for e in sink.events
        ]
