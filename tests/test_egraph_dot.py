"""Tests for the e-graph DOT exporter (visualization tooling)."""

from repro.egraph.dot import to_dot
from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import parse_rewrite
from repro.egraph.runner import RunnerLimits, run_saturation
from repro.lang.parser import parse


class TestToDot:
    def test_basic_structure(self):
        g = EGraph()
        g.add_term(parse("(+ (Get x 0) 1)"))
        dot = to_dot(g)
        assert dot.startswith("digraph egraph {")
        assert dot.rstrip().endswith("}")
        assert "cluster_" in dot  # e-classes as clusters
        assert "Get x 0" in dot or "x[0]" in dot

    def test_merged_classes_share_cluster(self):
        g = EGraph()
        a = g.add_term(parse("(+ a b)"))
        b = g.add_term(parse("(+ b a)"))
        g.union(a, b)
        g.rebuild()
        dot = to_dot(g)
        # Two + nodes, one class cluster containing both
        assert dot.count('label="+"') == 2
        n_clusters = dot.count("subgraph cluster_")
        assert n_clusters == g.n_classes

    def test_edges_point_to_classes(self):
        g = EGraph()
        g.add_term(parse("(neg a)"))
        dot = to_dot(g)
        assert "->" in dot

    def test_saturated_graph_renders(self):
        g = EGraph()
        g.add_term(parse("(+ (Get x 0) 0)"))
        run_saturation(
            g,
            [parse_rewrite("id", "(+ ?a 0) => ?a")],
            RunnerLimits(max_iterations=3),
        )
        dot = to_dot(g)
        assert dot.count("subgraph cluster_") == g.n_classes

    def test_max_classes_truncates(self):
        g = EGraph()
        for i in range(20):
            g.add_term(parse(f"(Get x {i})"))
        dot = to_dot(g, max_classes=5)
        assert dot.count("subgraph cluster_") == 5
        assert "truncated" in dot
