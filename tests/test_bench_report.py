"""Tests for Markdown report generation."""

from repro.bench.harness import Measurement, SuiteRow
from repro.bench.report import (
    compile_time_table_md,
    correctness_summary,
    speedup_table_md,
    suite_report_md,
)


def _rows():
    row = SuiteRow(key="matmul-2x2x2", family="MatMul")
    row.measurements["scalar"] = Measurement("scalar", 100, True)
    row.measurements["slp"] = Measurement("slp", 50, True,
                                          compile_time=0.1)
    row.measurements["isaria"] = Measurement(
        "isaria", 25, True, compile_time=3.0
    )
    row.measurements["nature"] = Measurement(
        "nature", 0, False, error="no library kernel"
    )
    return [row]


class TestSpeedupTable:
    def test_values_and_dashes(self):
        table = speedup_table_md(_rows())
        assert "| matmul-2x2x2 | 100 |" in table
        assert "2.00x" in table  # slp
        assert "4.00x" in table  # isaria
        assert "| - |" in table or " - |" in table  # nature missing

    def test_markdown_structure(self):
        table = speedup_table_md(_rows())
        lines = table.splitlines()
        assert lines[0].startswith("| kernel |")
        assert set(lines[1].replace("|", "").split()) == {"---"}


class TestCompileTimeTable:
    def test_times_rendered(self):
        table = compile_time_table_md(_rows(), systems=("slp", "isaria"))
        assert "0.1s" in table
        assert "3.0s" in table


class TestCorrectness:
    def test_summary_counts(self):
        checked, correct, failures = correctness_summary(_rows())
        assert checked == 3  # nature errored, not counted
        assert correct == 3
        assert failures == []

    def test_failures_reported(self):
        rows = _rows()
        rows[0].measurements["slp"] = Measurement("slp", 50, False)
        _checked, _correct, failures = correctness_summary(rows)
        assert failures == [("matmul-2x2x2", "slp")]


class TestFullReport:
    def test_sections_present(self):
        report = suite_report_md(_rows(), "Demo sweep")
        assert report.startswith("## Demo sweep")
        assert "### Speedup" in report
        assert "### Compile times" in report
        assert "Correctness: 3/3" in report
