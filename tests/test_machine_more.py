"""More machine-model tests: dual issue, latency, SimResult details."""

import pytest

from repro.machine import Machine, ProgramBuilder


@pytest.fixture(scope="module")
def machine(spec):
    return Machine(spec)


class TestDualIssue:
    def test_scalar_and_vector_coissue(self, machine):
        # Independent scalar and vector ops occupy different units and
        # should dual-issue, finishing faster than two scalar ops.
        mixed = ProgramBuilder()
        s1 = mixed.s_load("x", 0)
        v1 = mixed.v_load("x", 0)
        a = mixed.s_op("+", s1, s1)
        b = mixed.v_op("VecAdd", v1, v1)
        mixed.s_store("out", 0, a)
        mixed.v_store("out", 4, b)
        mixed.halt()

        serial = ProgramBuilder()
        s1 = serial.s_load("x", 0)
        s2 = serial.s_load("x", 1)
        a = serial.s_op("+", s1, s1)
        b = serial.s_op("+", s2, s2)
        serial.s_store("out", 0, a)
        serial.s_store("out", 1, b)
        serial.halt()

        mem = {"x": [1.0] * 4, "out": [0.0] * 8}
        m = machine.run(mixed.build(), dict(mem))
        s = machine.run(serial.build(), dict(mem))
        assert m.cycles <= s.cycles

    def test_same_unit_cannot_coissue(self, machine):
        b = ProgramBuilder()
        regs = [b.s_const(float(i)) for i in range(2)]
        r1 = b.s_op("+", regs[0], regs[1])
        r2 = b.s_op("+", regs[1], regs[0])
        b.s_store("out", 0, r1)
        b.s_store("out", 1, r2)
        b.halt()
        result = machine.run(b.build(), {"out": [0.0, 0.0]})
        # two scalar-unit ops can never share a cycle: at least 2
        # issue cycles for them alone
        assert result.cycles >= 4


class TestLatencies:
    def test_division_slower_than_add(self, machine):
        def chain(op, n=6):
            b = ProgramBuilder()
            acc = b.s_load("x", 0)
            operand = b.s_load("x", 1)
            for _ in range(n):
                acc = b.s_op(op, acc, operand)
            b.s_store("out", 0, acc)
            b.halt()
            return b.build()

        mem = {"x": [8.0, 2.0], "out": [0.0]}
        adds = machine.run(chain("+"), dict(mem))
        divs = machine.run(chain("/"), dict(mem))
        assert divs.cycles > adds.cycles * 2

    def test_custom_instruction_latency_respected(self, spec):
        from repro.isa import customized_spec

        custom = customized_spec(spec, sqrtsgn=True)
        machine = Machine(custom)
        b = ProgramBuilder()
        a = b.s_load("x", 0)
        s = b.s_load("x", 1)
        r = b.s_op("sqrtsgn", a, s)
        b.s_store("out", 0, r)
        b.halt()
        result = machine.run(b.build(), {"x": [9.0, -1.0], "out": [0.0]})
        assert result.array("out") == [3.0]


class TestSimResult:
    def test_opcode_counts(self, machine):
        b = ProgramBuilder()
        v = b.v_load("x", 0)
        b.v_store("out", 0, b.v_op("VecAdd", v, v))
        b.halt()
        result = machine.run(
            b.build(), {"x": [1.0] * 4, "out": [0.0] * 4}
        )
        assert result.opcode_counts["v.load"] == 1
        assert result.opcode_counts["v.op"] == 1
        assert result.n_instructions == 4

    def test_vector_splat_of_loaded_scalar(self, machine):
        b = ProgramBuilder()
        s = b.s_load("x", 2)
        b.v_store("out", 0, b.v_splat(s))
        b.halt()
        result = machine.run(
            b.build(), {"x": [0, 0, 5.0, 0], "out": [0.0] * 4}
        )
        assert result.array("out") == [5.0] * 4

    def test_shuffle_from_two_sources(self, machine):
        b = ProgramBuilder()
        a = b.v_load("x", 0)
        c = b.v_load("y", 0)
        b.v_store("out", 0, b.v_shuffle(a, c, (0, 4, 1, 5)))
        b.halt()
        result = machine.run(
            b.build(),
            {"x": [1, 2, 3, 4], "y": [9, 8, 7, 6], "out": [0.0] * 4},
        )
        assert result.array("out") == [1.0, 9.0, 2.0, 8.0]
