"""Differential tests: compiled e-matching vs. the legacy matcher.

The compiled matcher (:mod:`repro.egraph.compile_pattern`) must return
the *identical* match list — same ``(root, binding)`` pairs, same
order, same truncation under caps and work budgets — as the legacy
recursive matcher it replaces, on any e-graph.  The legacy matcher is
kept precisely so this equivalence stays executable.
"""

from __future__ import annotations

import random

import pytest

from repro.egraph.compile_pattern import (
    BINDW,
    CHECKW,
    LEAF,
    SCAN,
    SCANW,
    compile_pattern,
)
from repro.egraph.egraph import EGraph
from repro.egraph.ematch import ematch, match_in_class
from repro.lang.parser import parse, to_sexpr
from repro.lang.term import Term, make, wildcard


def _assert_same_matches(g, pattern, **kwargs):
    fast = ematch(g, pattern, compiled=True, **kwargs)
    slow = ematch(g, pattern, compiled=False, **kwargs)
    assert fast == slow, (
        f"pattern {to_sexpr(pattern)}: compiled={fast} legacy={slow}"
    )
    return fast


class TestCompilation:
    def test_all_wildcard_compound_fuses(self):
        compiled = compile_pattern(parse("(+ ?a ?b)"))
        assert [i[0] for i in compiled.program] == [SCANW]
        assert compiled.slot_names == ("a", "b")

    def test_nested_pattern_program_shape(self):
        compiled = compile_pattern(parse("(VecAdd (Vec ?a ?b) 1)"))
        codes = [i[0] for i in compiled.program]
        assert codes == [SCAN, SCANW, LEAF]

    def test_repeated_wildcard_checks(self):
        # Both children fuse; the repeated ?x becomes a check action
        # inside the second SCANW rather than a fresh bind.
        compiled = compile_pattern(parse("(* (+ ?x ?y) (+ ?x ?z))"))
        codes = [i[0] for i in compiled.program]
        assert codes == [SCAN, SCANW, SCANW]
        actions = compiled.program[2][5]
        assert actions[0][0] is False  # ?x: check against slot
        assert actions[1][0] is True   # ?z: new binding
        assert compiled.slot_names == ("x", "y", "z")

    def test_mixed_children_use_generic_scan(self):
        compiled = compile_pattern(parse("(* ?a (+ ?b 1))"))
        codes = [i[0] for i in compiled.program]
        assert codes == [SCAN, BINDW, SCAN, BINDW, LEAF]

    def test_programs_are_cached(self):
        pattern = parse("(+ ?cache_probe ?b)")
        assert compile_pattern(pattern) is compile_pattern(pattern)

    def test_disassemble_lists_every_instruction(self):
        compiled = compile_pattern(parse("(VecAdd (Vec ?a ?b) 1)"))
        listing = compiled.disassemble()
        assert len(listing.splitlines()) == len(compiled.program)
        assert "scanw" in listing


class TestDirectedCases:
    def test_leaf_only_pattern(self):
        g = EGraph()
        root = g.add_term(parse("(neg 7)"))
        _assert_same_matches(g, parse("(neg 7)"), op_index=g.op_index())
        _assert_same_matches(g, parse("(neg 8)"), op_index=g.op_index())
        assert match_in_class(g, parse("(neg 7)"), root, compiled=True) == [{}]

    def test_wildcard_root_match_in_class(self):
        g = EGraph()
        root = g.add_term(parse("(+ a b)"))
        fast = match_in_class(g, parse("?w"), root, compiled=True)
        slow = match_in_class(g, parse("?w"), root, compiled=False)
        assert fast == slow == [{"w": g.find(root)}]

    def test_nonlinear_across_siblings(self):
        g = EGraph()
        g.add_term(parse("(* (+ a b) (+ a c))"))
        g.add_term(parse("(* (+ a b) (+ d c))"))
        pattern = parse("(* (+ ?x ?y) (+ ?x ?z))")
        matches = _assert_same_matches(g, pattern, op_index=g.op_index())
        assert len(matches) == 1

    def test_nonlinear_within_fused_node(self):
        g = EGraph()
        g.add_term(parse("(+ a a)"))
        g.add_term(parse("(+ a b)"))
        matches = _assert_same_matches(
            g, parse("(+ ?x ?x)"), op_index=g.op_index()
        )
        assert len(matches) == 1

    def test_matches_on_dirty_graph(self):
        # Mid-iteration matching sees merged-but-unrepaired classes.
        g = EGraph()
        a = g.add_term(parse("(+ (neg p) (neg q))"))
        b = g.add_term(parse("(+ (neg q) (neg p))"))
        g.union(a, b)  # no rebuild: graph is dirty
        _assert_same_matches(g, parse("(+ (neg ?x) ?y)"))

    def test_cap_truncation_identical(self):
        g = EGraph()
        root = g.add_term(parse("(+ a b)"))
        for i in range(25):
            g.union(root, g.add_term(parse(f"(+ a c{i})")))
        g.rebuild()
        pattern = parse("(+ ?x ?y)")
        for cap in (1, 2, 7, 26, 1000):
            fast = match_in_class(g, pattern, root, cap=cap, compiled=True)
            slow = match_in_class(g, pattern, root, cap=cap, compiled=False)
            assert fast == slow
            assert len(fast) == min(cap, 26)

    def test_work_budget_sweep_identical(self):
        g = EGraph()
        for i in range(40):
            g.add_term(parse(f"(* (+ (Get x {i}) 1) (Get y {i}))"))
        pattern = parse("(* (+ ?a ?b) ?c)")
        for budget in range(1, 130, 3):
            _assert_same_matches(
                g, pattern, op_index=g.op_index(), work_budget=budget
            )

    def test_counters_report_node_visits(self):
        g = EGraph()
        for i in range(10):
            g.add_term(parse(f"(+ (Get x {i}) 1)"))
        counters: dict = {}
        ematch(g, parse("(+ ?a ?b)"), op_index=g.op_index(),
               counters=counters)
        assert counters["node_visits"] > 0

    def test_env_flag_selects_legacy(self, monkeypatch):
        g = EGraph()
        g.add_term(parse("(+ a b)"))
        monkeypatch.setenv("REPRO_LEGACY_EMATCH", "1")
        legacy_default = ematch(g, parse("(+ ?a ?b)"))
        monkeypatch.delenv("REPRO_LEGACY_EMATCH")
        compiled_default = ematch(g, parse("(+ ?a ?b)"))
        assert legacy_default == compiled_default


# -- randomized differential fuzzing -------------------------------------

_OPS = [("+", 2), ("*", 2), ("neg", 1), ("Vec", 4)]
_LEAVES = ["a", "b", "c", "0", "1", "(Get x 0)", "(Get x 1)"]


def _random_term(rng: random.Random, depth: int) -> Term:
    if depth <= 0 or rng.random() < 0.3:
        return parse(rng.choice(_LEAVES))
    op, arity = rng.choice(_OPS)
    return make(
        op, *(_random_term(rng, depth - 1) for _ in range(arity))
    )


def _random_pattern(rng: random.Random, depth: int) -> Term:
    roll = rng.random()
    if depth <= 0 or roll < 0.25:
        if roll < 0.6:
            return wildcard(rng.choice("pqr"))
        return parse(rng.choice(_LEAVES))
    op, arity = rng.choice(_OPS)
    return make(
        op, *(_random_pattern(rng, depth - 1) for _ in range(arity))
    )


def _random_egraph(rng: random.Random) -> EGraph:
    g = EGraph()
    roots = [g.add_term(_random_term(rng, rng.randint(1, 4)))
             for _ in range(rng.randint(3, 10))]
    for _ in range(rng.randint(0, 4)):
        g.union(rng.choice(roots), rng.choice(roots))
    g.rebuild()
    return g


@pytest.mark.parametrize("seed", range(60))
def test_fuzz_compiled_equals_legacy(seed):
    rng = random.Random(seed)
    g = _random_egraph(rng)
    for _ in range(8):
        pattern = _random_pattern(rng, rng.randint(1, 3))
        if pattern.op == "Wild":
            continue  # handled before matcher selection, trivially equal
        limit = rng.choice([None, 1, 3, 50])
        budget = rng.choice([5, 37, 10_000])
        kwargs = dict(limit=limit, work_budget=budget)
        if rng.random() < 0.7:
            kwargs["op_index"] = g.op_index()
        _assert_same_matches(g, pattern, **kwargs)


@pytest.mark.parametrize("seed", range(20))
def test_fuzz_on_dirty_graphs(seed):
    # Same equivalence with pending (unrebuilt) unions, as the runner
    # produces between rule applications within one iteration.
    rng = random.Random(1000 + seed)
    g = _random_egraph(rng)
    classes = [c.id for c in g.classes()]
    for _ in range(3):
        g.union(rng.choice(classes), rng.choice(classes))
    for _ in range(6):
        pattern = _random_pattern(rng, rng.randint(1, 3))
        if pattern.op == "Wild":
            continue
        _assert_same_matches(g, pattern, work_budget=rng.choice([11, 10_000]))
