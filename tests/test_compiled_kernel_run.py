"""Tests for the CompiledKernel.run convenience API."""

import numpy as np
import pytest

from repro.kernels import matmul_kernel, run_reference


class TestRun:
    def test_executes_and_matches_reference(self, isaria_compiler):
        instance = matmul_kernel(2, 2, 2)
        kernel = isaria_compiler.compile_kernel(instance)
        inputs = instance.make_inputs(4)
        result = kernel.run(inputs)
        got = result.array("out")[: instance.output_len]
        want = run_reference(instance, inputs)
        assert np.allclose(got, want, rtol=1e-4)
        assert result.cycles > 0

    def test_unscheduled_run_same_values(self, isaria_compiler):
        instance = matmul_kernel(2, 2, 2)
        kernel = isaria_compiler.compile_kernel(instance)
        inputs = instance.make_inputs(4)
        scheduled = kernel.run(inputs)
        plain = kernel.run(inputs, schedule=False)
        assert scheduled.array("out") == plain.array("out")
        assert scheduled.cycles <= plain.cycles

    def test_wrong_input_length_rejected(self, isaria_compiler):
        instance = matmul_kernel(2, 2, 2)
        kernel = isaria_compiler.compile_kernel(instance)
        with pytest.raises(ValueError):
            kernel.run({"A": [1.0], "B": [0.0] * 4})
