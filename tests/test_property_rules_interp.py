"""Property-based tests for the interpreter, normalization, cost
model, and rewrite soundness."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.compiler.normalize import normalize
from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import parse_rewrite
from repro.egraph.runner import RunnerLimits, run_saturation
from repro.interp.env import term_inputs
from repro.interp.value import UNDEFINED, values_equal
from repro.isa import fusion_g3_spec
from repro.lang import builders as B
from repro.phases.cost import CostModel

_SPEC = fusion_g3_spec()
_INTERP = _SPEC.interpreter()
_COST = CostModel(_SPEC)

# Scalar terms over +,-,*,neg,mac (total ops, no undefinedness).
def total_terms():
    leaves = st.one_of(
        st.integers(min_value=-3, max_value=3).map(B.const),
        st.sampled_from(["a", "b", "c"]).map(B.symbol),
    )

    def extend(children):
        return st.one_of(
            st.builds(B.neg, children),
            st.builds(B.add, children, children),
            st.builds(B.sub, children, children),
            st.builds(B.mul, children, children),
            st.builds(B.mac, children, children, children),
        )

    return st.recursive(leaves, extend, max_leaves=10)


envs = st.fixed_dictionaries(
    {
        "a": st.integers(min_value=-5, max_value=5),
        "b": st.integers(min_value=-5, max_value=5),
        "c": st.integers(min_value=-5, max_value=5),
    }
)


class TestInterpreterProperties:
    @given(total_terms(), envs)
    @settings(max_examples=80, deadline=None)
    def test_total_fragment_never_undefined(self, term, env):
        assert _INTERP.evaluate(term, env) is not UNDEFINED

    @given(total_terms(), envs)
    @settings(max_examples=80, deadline=None)
    def test_normalization_preserves_semantics(self, term, env):
        assert values_equal(
            _INTERP.evaluate(term, env),
            _INTERP.evaluate(normalize(term), env),
        )

    @given(total_terms())
    @settings(max_examples=60, deadline=None)
    def test_normalization_idempotent(self, term):
        once = normalize(term)
        assert normalize(once) == once


class TestCostModelProperties:
    @given(total_terms())
    @settings(max_examples=80, deadline=None)
    def test_strict_monotonicity(self, term):
        parent = _COST.term_cost(term)
        for arg in term.args:
            assert _COST.term_cost(arg) < parent

    @given(total_terms())
    @settings(max_examples=80, deadline=None)
    def test_cost_positive(self, term):
        assert _COST.term_cost(term) > 0


_RULES = [
    parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)"),
    parse_rewrite("assoc", "(+ (+ ?a ?b) ?c) => (+ ?a (+ ?b ?c))"),
    parse_rewrite("mul-comm", "(* ?a ?b) => (* ?b ?a)"),
    parse_rewrite("sub-neg", "(- ?a ?b) => (+ ?a (neg ?b))"),
    parse_rewrite("mac-def", "(mac ?c ?a ?b) => (+ ?c (* ?a ?b))"),
    parse_rewrite("add-zero", "(+ ?a 0) => ?a"),
    parse_rewrite("mul-one", "(* ?a 1) => ?a"),
    parse_rewrite("distribute",
                  "(* ?a (+ ?b ?c)) => (+ (* ?a ?b) (* ?a ?c))"),
]


class TestSaturationSoundness:
    @given(total_terms(), envs)
    @settings(max_examples=30, deadline=None)
    def test_everything_in_root_class_is_equivalent(self, term, env):
        """After saturating with sound rules, every extractable term in
        the root's class evaluates like the original — the e-graph
        never conflates inequivalent programs."""
        g = EGraph()
        root = g.add_term(term)
        run_saturation(
            g,
            _RULES,
            RunnerLimits(
                max_iterations=3, max_nodes=3000, time_limit=2.0
            ),
        )
        from repro.egraph.extract import Extractor

        extractor = Extractor(g, lambda op, payload, child_terms: 1.0)
        if not extractor.has_solution(root):
            return
        _cost, best = extractor.best(root)
        expected = _INTERP.evaluate(term, env)
        assume(set(term_inputs(best)) <= set(env))
        assert values_equal(expected, _INTERP.evaluate(best, env))
