"""Smoke test for the e-graph visualization example."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.pregen import DEFAULT_RULES_FILE

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


@pytest.mark.slow
@pytest.mark.skipif(
    not DEFAULT_RULES_FILE.exists(),
    reason="pregenerated rules not built",
)
def test_egraph_visualization_writes_dots(tmp_path):
    proc = subprocess.run(
        [
            sys.executable,
            str(EXAMPLES / "egraph_visualization.py"),
            str(tmp_path),
        ],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    for name in (
        "egraph_0_initial.dot",
        "egraph_1_expanded.dot",
        "egraph_2_compiled.dot",
    ):
        path = tmp_path / name
        assert path.exists(), name
        text = path.read_text()
        assert text.startswith("digraph egraph {")
    assert "extracted (cost" in proc.stdout
