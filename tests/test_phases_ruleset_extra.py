"""Extra tests: PhasedRuleSet container and assignment edge cases."""

from repro.egraph.rewrite import parse_rewrite
from repro.phases import (
    Phase,
    PhaseParams,
    assign_phase,
    assign_phases,
)


def _rules():
    return [
        parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)"),
        parse_rewrite("vcomm", "(VecAdd ?a ?b) => (VecAdd ?b ?a)"),
        parse_rewrite(
            "lift",
            "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3)) => "
            "(VecAdd (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))",
        ),
    ]


class TestPhasedRuleSet:
    def test_iteration_order_is_phase_order(self, cost_model, spec):
        from repro.phases import default_params

        ruleset = assign_phases(cost_model, _rules(),
                                default_params(spec))
        names = [r.name for r in ruleset]
        # expansion first, then compilation, then optimization
        assert names.index("comm") < names.index("lift")
        assert names.index("lift") < names.index("vcomm")

    def test_all_rules_preserves_everything(self, cost_model, spec):
        from repro.phases import default_params

        ruleset = assign_phases(cost_model, _rules(),
                                default_params(spec))
        assert {r.name for r in ruleset.all_rules()} == {
            "comm", "vcomm", "lift",
        }

    def test_empty_ruleset(self, cost_model):
        ruleset = assign_phases(
            cost_model, [], PhaseParams(alpha=1, beta=1)
        )
        assert len(ruleset) == 0
        assert ruleset.all_rules() == []
        assert "0 rules" in ruleset.summary()


class TestBoundaryAssignments:
    def test_cd_exactly_alpha_is_not_compilation(self, cost_model):
        # the rule's CD must be STRICTLY greater than alpha
        rule = parse_rewrite("nn", "(neg (neg ?a)) => ?a")
        from repro.phases import cost_differential

        cd = cost_differential(cost_model, rule)
        params = PhaseParams(alpha=cd, beta=0.0)
        assert assign_phase(cost_model, rule, params) is not (
            Phase.COMPILATION
        )
        params = PhaseParams(alpha=cd - 0.5, beta=0.0)
        assert assign_phase(cost_model, rule, params) is (
            Phase.COMPILATION
        )

    def test_ca_exactly_beta_is_optimization(self, cost_model):
        rule = parse_rewrite("vcomm", "(VecAdd ?a ?b) => (VecAdd ?b ?a)")
        from repro.phases import aggregate_cost

        ca = aggregate_cost(cost_model, rule)
        params = PhaseParams(alpha=10**9, beta=ca)
        assert assign_phase(cost_model, rule, params) is (
            Phase.OPTIMIZATION
        )
        params = PhaseParams(alpha=10**9, beta=ca - 0.5)
        assert assign_phase(cost_model, rule, params) is Phase.EXPANSION

    def test_direction_matters(self, cost_model, spec):
        from repro.phases import default_params

        params = default_params(spec)
        forward = parse_rewrite(
            "lift",
            "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3)) => "
            "(VecAdd (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))",
        )
        backward = forward.reversed("unlift")
        assert assign_phase(cost_model, forward, params) is (
            Phase.COMPILATION
        )
        # the reverse *raises* cost: not compilation
        assert assign_phase(cost_model, backward, params) is not (
            Phase.COMPILATION
        )
