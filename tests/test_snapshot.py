"""Snapshot serialization and checkpoint/resume (repro.egraph.snapshot).

The contract under test: a restored e-graph is *state-identical* to
the serialized one, so saturation continued from a snapshot produces
byte-for-byte the same graph (and scheduler state) as a run that never
paused.  Corrupt or version-mismatched bytes always raise
:class:`SnapshotError` — the cache layer turns that into a miss, never
a wrong answer.
"""

from __future__ import annotations

import json
from dataclasses import asdict

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.compiler.frontend import trace_kernel
from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import parse_rewrite
from repro.egraph.runner import (
    BackoffScheduler,
    Runner,
    RunnerLimits,
    RuleScheduler,
    StopReason,
    run_saturation,
)
from repro.egraph.snapshot import (
    MAGIC,
    SNAPSHOT_VERSION,
    SaturationCheckpoint,
    SnapshotError,
    egraph_from_doc,
    egraph_to_doc,
    limits_digest,
    load_egraph,
    load_snapshot_meta,
    rules_digest,
    save_egraph,
    scheduler_from_doc,
    scheduler_to_doc,
    term_digest,
)
from repro.isa import customized_spec
from repro.lang.parser import parse
from repro.phases import CostModel, assign_phases, default_params

_COMM = parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)")
_ASSOC = parse_rewrite("assoc", "(+ (+ ?a ?b) ?c) => (+ ?a (+ ?b ?c))")
_MUL_COMM = parse_rewrite("mul-comm", "(* ?a ?b) => (* ?b ?a)")
_RULES = [_COMM, _ASSOC, _MUL_COMM]

_BIG = RunnerLimits(max_iterations=30, max_nodes=500_000, time_limit=120.0)


def _limits(max_iterations: int, **overrides) -> RunnerLimits:
    """Generous node/time budgets so only the iteration cap can trip."""
    kwargs = dict(
        max_iterations=max_iterations,
        max_nodes=500_000,
        time_limit=120.0,
    )
    kwargs.update(overrides)
    return RunnerLimits(**kwargs)


def _worked_graph() -> tuple[EGraph, int]:
    """A graph with real history: merged classes, dirty-then-rebuilt."""
    g = EGraph()
    root = g.add_term(
        parse("(* (+ (+ (Get x 0) (Get x 1)) (Get x 2)) (Get y 0))")
    )
    run_saturation(g, _RULES, _limits(3))
    return g, root


@pytest.fixture(scope="module")
def vadd_term(spec):
    program = trace_kernel(
        "vadd",
        lambda x, y: [x[i] + y[i] for i in range(4)],
        {"x": 4, "y": 4},
        spec.vector_width,
    )
    return program.term


@pytest.fixture(scope="module")
def fusion_ruleset(spec, cost_model, synthesis_size3):
    return assign_phases(
        cost_model, synthesis_size3.rules, default_params(spec)
    )


@pytest.fixture(scope="module")
def custom_ruleset(spec, synthesis_size3):
    """The same rules phase-assigned under the §5.4 customized ISA."""
    custom = customized_spec(spec, sqrtsgn=True)
    model = CostModel(custom)
    return assign_phases(
        model, synthesis_size3.rules, default_params(custom)
    )


class TestContainer:
    def test_save_load_save_is_fixpoint(self):
        g, _ = _worked_graph()
        data = save_egraph(g)
        restored, meta = load_egraph(data)
        assert save_egraph(restored) == data
        assert meta["schema"] == SNAPSHOT_VERSION
        assert len(meta["digest"]) == 16

    def test_restored_graph_matches_live_state(self):
        g, root = _worked_graph()
        restored, _ = load_egraph(save_egraph(g))
        assert restored.n_nodes == g.n_nodes
        assert restored.n_classes == g.n_classes
        assert restored.find(root) == g.find(root)
        assert restored._hashcons == g._hashcons
        assert list(restored._hashcons) == list(g._hashcons)  # order too

    def test_meta_rides_the_uncompressed_header(self):
        g, _ = _worked_graph()
        data = save_egraph(g, meta={"kernel": "k1", "phase": "expansion"})
        meta, _body = load_snapshot_meta(data)
        assert meta["kernel"] == "k1"
        assert meta["phase"] == "expansion"
        # The meta line must be scannable without decompression.
        header_line = data.split(b"\n", 2)[1]
        assert b'"kernel":"k1"' in header_line

    def test_empty_graph_round_trips(self):
        data = save_egraph(EGraph())
        restored, _ = load_egraph(data)
        assert restored.n_classes == 0
        assert save_egraph(restored) == data

    def test_not_a_snapshot_raises(self):
        with pytest.raises(SnapshotError):
            load_snapshot_meta(b"no newline here")

    def test_bad_magic_raises(self):
        g, _ = _worked_graph()
        data = b"XSNP9" + save_egraph(g)[len(MAGIC):]
        with pytest.raises(SnapshotError, match="magic"):
            load_egraph(data)

    def test_missing_body_raises(self):
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot_meta(MAGIC + b"\n{}")

    def test_garbled_meta_line_raises(self):
        data = MAGIC + b"\nnot-json\nbody"
        with pytest.raises(SnapshotError, match="meta"):
            load_snapshot_meta(data)

    def test_truncated_body_raises(self):
        g, _ = _worked_graph()
        data = save_egraph(g)
        with pytest.raises(SnapshotError, match="corrupt"):
            load_egraph(data[: len(data) - 20])

    def test_schema_mismatch_raises(self):
        g, _ = _worked_graph()
        magic, meta_line, body = save_egraph(g).split(b"\n", 2)
        meta = json.loads(meta_line)
        meta["schema"] = SNAPSHOT_VERSION + 1
        forged = b"\n".join(
            [magic, json.dumps(meta).encode("utf-8"), body]
        )
        with pytest.raises(SnapshotError, match="schema"):
            load_egraph(forged)

    def test_payload_version_mismatch_raises(self):
        g, _ = _worked_graph()
        doc = egraph_to_doc(g)
        doc["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(SnapshotError, match="version"):
            egraph_from_doc(doc)


class TestDigests:
    def test_term_digest_is_content_addressed(self):
        a = parse("(+ (Get x 0) 1)")
        b = parse("(+ (Get x 0) 1)")
        c = parse("(+ (Get x 0) 2)")
        assert term_digest(a) == term_digest(b)
        assert term_digest(a) != term_digest(c)

    def test_rules_digest_is_order_sensitive(self):
        assert rules_digest([_COMM, _ASSOC]) == rules_digest(
            [_COMM, _ASSOC]
        )
        # The saturation loop applies rules in list order, so a
        # reordered ruleset is a different schedule.
        assert rules_digest([_COMM, _ASSOC]) != rules_digest(
            [_ASSOC, _COMM]
        )

    def test_limits_digest_sees_every_field(self):
        base = RunnerLimits()
        assert limits_digest(base) == limits_digest(RunnerLimits())
        assert limits_digest(base) != limits_digest(
            RunnerLimits(match_work=base.match_work + 1)
        )


class TestSchedulerState:
    def test_backoff_round_trip_preserves_bans(self):
        scheduler = BackoffScheduler(match_limit=2, ban_length=3)
        scheduler.record(_COMM, 0, 10)  # overflow: ban + double
        assert not scheduler.can_apply(_COMM, 1)
        doc = scheduler_to_doc(scheduler)
        restored = scheduler_from_doc(doc)
        assert restored.state_dict() == scheduler.state_dict()
        assert not restored.can_apply(_COMM, 1)
        assert restored.threshold(_COMM) == scheduler.threshold(_COMM)
        assert restored.any_banned(1)

    def test_default_scheduler_round_trips(self):
        restored = scheduler_from_doc(scheduler_to_doc(RuleScheduler()))
        assert type(restored) is RuleScheduler

    def test_unknown_kind_raises(self):
        with pytest.raises(SnapshotError, match="kind"):
            scheduler_from_doc({"kind": "bogus"})

    def test_non_dict_state_raises(self):
        with pytest.raises(SnapshotError):
            scheduler_from_doc(["backoff"])


class TestCheckpoint:
    def _paused_runner(self) -> Runner:
        g = EGraph()
        g.add_term(
            parse("(* (+ (+ (Get x 0) (Get x 1)) (Get x 2)) (Get y 0))")
        )
        runner = Runner(g, _RULES, _limits(2))
        runner.run()
        return runner

    def test_bytes_round_trip(self):
        runner = self._paused_runner()
        ckpt = runner.checkpoint(meta={"phase": "expansion"})
        restored = SaturationCheckpoint.from_bytes(ckpt.to_bytes())
        assert restored.iterations_done == ckpt.iterations_done
        assert restored.rules_digest == ckpt.rules_digest
        assert restored.frontier == ckpt.frontier
        assert restored.limits == asdict(runner.limits)
        assert restored.scheduler == ckpt.scheduler
        assert restored.meta["phase"] == "expansion"
        assert restored.meta["kind"] == "checkpoint"
        assert save_egraph(restored.egraph) == save_egraph(ckpt.egraph)

    def test_file_round_trip(self, tmp_path):
        runner = self._paused_runner()
        path = runner.checkpoint().save(tmp_path / "deep" / "run.ckpt")
        restored = SaturationCheckpoint.load(path)
        assert restored.iterations_done == runner.iterations_done

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            SaturationCheckpoint.load(tmp_path / "absent.ckpt")

    def test_plain_egraph_snapshot_is_not_a_checkpoint(self):
        g, _ = _worked_graph()
        with pytest.raises(SnapshotError, match="checkpoint"):
            SaturationCheckpoint.from_bytes(save_egraph(g))

    def test_resume_refuses_a_different_ruleset(self):
        runner = self._paused_runner()
        ckpt = runner.checkpoint()
        with pytest.raises(SnapshotError, match="different rule list"):
            Runner.resume(ckpt, [_COMM])

    def test_resume_defaults_to_checkpointed_limits(self):
        runner = self._paused_runner()
        resumed = Runner.resume(
            runner.checkpoint().to_bytes(), _RULES
        )
        assert resumed.limits == runner.limits
        assert resumed.iterations_done == runner.iterations_done


def _parity_case(term, rules, total: int, split: int, frontier: bool):
    """Run straight-through vs split-at-``split``-then-resume."""
    g1 = EGraph()
    g1.add_term(term)
    straight = Runner(g1, rules, _limits(total), frontier=frontier)
    straight_report = straight.run()

    g2 = EGraph()
    g2.add_term(term)
    first = Runner(g2, rules, _limits(split), frontier=frontier)
    first.run()
    # Full serialize → restore hop, as the checkpoint dir would do.
    resumed = Runner.resume(
        first.checkpoint(meta={"case": "parity"}).to_bytes(),
        rules,
        limits=_limits(total),
    )
    resumed_report = resumed.run()
    return straight, straight_report, resumed, resumed_report


class TestResumeParity:
    """serialize → restore → continue ≡ never-paused, byte for byte."""

    @pytest.mark.parametrize(
        "ruleset_fixture,frontier",
        [
            ("fusion_ruleset", False),
            ("fusion_ruleset", True),
            ("custom_ruleset", False),
        ],
    )
    def test_split_resume_matches_straight_through(
        self, request, ruleset_fixture, frontier, vadd_term
    ):
        ruleset = request.getfixturevalue(ruleset_fixture)
        rules = list(ruleset.expansion)
        straight, s_report, resumed, r_report = _parity_case(
            vadd_term, rules, total=5, split=2, frontier=frontier
        )
        assert save_egraph(resumed.egraph) == save_egraph(straight.egraph)
        assert (
            scheduler_to_doc(resumed.scheduler)
            == scheduler_to_doc(straight.scheduler)
        )
        assert resumed.iterations_done == straight.iterations_done
        assert r_report.stop_reason == s_report.stop_reason

    @settings(max_examples=25, deadline=None)
    @given(
        depth=st.integers(min_value=2, max_value=4),
        indices=st.lists(
            st.integers(min_value=0, max_value=3),
            min_size=3,
            max_size=7,
        ),
        split=st.integers(min_value=1, max_value=4),
        frontier=st.booleans(),
    )
    def test_property_split_resume_is_invisible(
        self, depth, indices, split, frontier
    ):
        # Random left-leaning sum/product over random array reads, a
        # random split point: pausing must never be observable.
        sexpr = f"(Get x {indices[0]})"
        for n, i in enumerate(indices[1:]):
            op = "+" if n % depth else "*"
            sexpr = f"({op} {sexpr} (Get {'xy'[i % 2]} {i}))"
        term = parse(sexpr)
        straight, _, resumed, _ = _parity_case(
            term, _RULES, total=split + 2, split=split,
            frontier=frontier,
        )
        assert save_egraph(resumed.egraph) == save_egraph(straight.egraph)
        assert (
            scheduler_to_doc(resumed.scheduler)
            == scheduler_to_doc(straight.scheduler)
        )

    def test_resume_after_deadline_matches_straight_run(
        self, fusion_ruleset, vadd_term
    ):
        """The ISSUE regression: a deadline stop resumes losslessly."""
        rules = list(fusion_ruleset.expansion)
        g1 = EGraph()
        g1.add_term(vadd_term)
        straight = Runner(g1, rules, _limits(4))
        s_report = straight.run()

        g2 = EGraph()
        g2.add_term(vadd_term)
        tripped = Runner(g2, rules, _limits(4, time_limit=0.0))
        t_report = tripped.run()
        assert t_report.stop_reason is StopReason.TIME_LIMIT

        resumed = Runner.resume(
            tripped.checkpoint(meta={"phase": "expansion"}).to_bytes(),
            rules,
            limits=_limits(4),
        )
        r_report = resumed.run()
        assert r_report.stop_reason == s_report.stop_reason
        assert resumed.iterations_done == straight.iterations_done
        assert save_egraph(resumed.egraph) == save_egraph(straight.egraph)


class TestPhaseCheckpointFiles:
    """REPRO_CHECKPOINT_DIR wiring in the compile pipeline."""

    def test_deadline_phase_writes_resumable_checkpoint(
        self, tmp_path, monkeypatch, fusion_ruleset, vadd_term
    ):
        from repro.compiler.pipeline import _run_phase
        from repro.obs import ListSink, Tracer, use_tracer

        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        rules = list(fusion_ruleset.expansion)
        g = EGraph()
        g.add_term(vadd_term)
        sink = ListSink()
        with use_tracer(Tracer(sink)):
            report = _run_phase(
                g, rules, "expansion",
                _limits(4, time_limit=0.0),
                None, label="unit test/vadd",
            )
        assert report.stop_reason is StopReason.TIME_LIMIT
        path = tmp_path / "unit-test-vadd-expansion.ckpt"
        assert path.exists()
        writes = [
            e for e in sink.events if e["name"] == "checkpoint.write"
        ]
        assert writes and writes[0]["attrs"]["path"] == str(path)

        resumed = Runner.resume(path, rules, limits=_limits(4))
        assert resumed.run().n_iterations > 0

    def test_no_checkpoint_on_clean_finish(
        self, tmp_path, monkeypatch
    ):
        from repro.compiler.pipeline import _run_phase

        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        g = EGraph()
        g.add_term(parse("(+ (Get x 0) (Get y 0))"))
        report = _run_phase(
            g, [_COMM], "expansion", _limits(10), None, label="clean"
        )
        assert report.stop_reason is StopReason.SATURATED
        assert list(tmp_path.iterdir()) == []

    def test_budget_retry_resumes_and_matches_straight_run(
        self, tmp_path, monkeypatch, fusion_ruleset, vadd_term
    ):
        """Re-running a tripped phase with a larger budget pays only
        the *new* iterations and lands byte-identical to a straight
        run that had the larger budget from the start."""
        from repro.compiler.pipeline import _run_phase
        from repro.obs import ListSink, Tracer, use_tracer

        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "ck"))
        rules = list(fusion_ruleset.expansion)

        g1 = EGraph()
        g1.add_term(vadd_term)
        first = _run_phase(
            g1, rules, "expansion", _limits(2), None, label="vadd"
        )
        assert first.stop_reason is StopReason.ITERATION_LIMIT
        assert (tmp_path / "ck" / "vadd-expansion.ckpt").exists()

        g2 = EGraph()
        g2.add_term(vadd_term)
        sink = ListSink()
        with use_tracer(Tracer(sink)):
            second = _run_phase(
                g2, rules, "expansion", _limits(4), None, label="vadd"
            )
        assert "checkpoint.resume" in [e["name"] for e in sink.events]
        # Only the iterations past the checkpoint are paid for: at most
        # 2 more here (it may saturate sooner), never the 2 replayed.
        assert 1 <= second.n_iterations <= 2

        monkeypatch.delenv("REPRO_CHECKPOINT_DIR")
        g3 = EGraph()
        g3.add_term(vadd_term)
        straight = _run_phase(
            g3, rules, "expansion", _limits(4), None, label="vadd"
        )
        assert save_egraph(g2) == save_egraph(g3)
        assert second.stop_reason == straight.stop_reason

    def test_checkpoint_for_a_different_input_is_ignored(
        self, tmp_path, monkeypatch, fusion_ruleset, vadd_term
    ):
        """A label collision across different inputs must not resume:
        the input-digest guard treats the file as stale."""
        from repro.compiler.pipeline import _run_phase
        from repro.obs import ListSink, Tracer, use_tracer

        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        rules = list(fusion_ruleset.expansion)
        g1 = EGraph()
        g1.add_term(vadd_term)
        _run_phase(g1, rules, "expansion", _limits(2), None, label="k")
        assert (tmp_path / "k-expansion.ckpt").exists()

        other = parse("(* (Get x 0) (Get y 1))")
        g2 = EGraph()
        g2.add_term(other)
        sink = ListSink()
        with use_tracer(Tracer(sink)):
            _run_phase(g2, rules, "expansion", _limits(2), None, label="k")
        names = [e["name"] for e in sink.events]
        assert "checkpoint.stale" in names
        assert "checkpoint.resume" not in names

        # The fresh run matches a no-checkpoint run of the same input.
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR")
        g3 = EGraph()
        g3.add_term(other)
        _run_phase(g3, rules, "expansion", _limits(2), None, label="k")
        assert save_egraph(g2) == save_egraph(g3)

    def test_saturating_retry_consumes_the_checkpoint(
        self, tmp_path, monkeypatch
    ):
        from repro.compiler.pipeline import _run_phase

        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        term = parse("(+ (Get x 0) (Get y 0))")
        g1 = EGraph()
        g1.add_term(term)
        first = _run_phase(
            g1, [_COMM], "expansion", _limits(1), None, label="sat"
        )
        assert first.stop_reason is StopReason.ITERATION_LIMIT
        path = tmp_path / "sat-expansion.ckpt"
        assert path.exists()

        g2 = EGraph()
        g2.add_term(term)
        second = _run_phase(
            g2, [_COMM], "expansion", _limits(10), None, label="sat"
        )
        assert second.stop_reason is StopReason.SATURATED
        assert not path.exists()
