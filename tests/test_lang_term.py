"""Unit tests for terms: interning, immutability, traversal, pickling."""

import pickle

import pytest

from repro.lang import builders as B
from repro.lang import term as T


class TestInterning:
    def test_same_construction_returns_same_object(self):
        a = B.add(B.get("x", 0), B.const(1))
        b = B.add(B.get("x", 0), B.const(1))
        assert a is b

    def test_distinct_terms_differ(self):
        assert B.const(1) is not B.const(2)
        assert B.add(B.const(1), B.const(2)) != B.add(
            B.const(2), B.const(1)
        )

    def test_integral_float_normalizes_to_int(self):
        assert B.const(2.0) is B.const(2)
        assert B.const(2.5) is not B.const(2)

    def test_payload_distinguishes_leaves(self):
        assert B.symbol("a") != B.symbol("b")
        assert B.get("x", 0) != B.get("x", 1)
        assert B.get("x", 0) != B.get("y", 0)
        assert B.symbol("a") != B.wildcard("a")


class TestImmutability:
    def test_setattr_raises(self):
        term = B.const(1)
        with pytest.raises(AttributeError):
            term.op = "Symbol"

    def test_const_rejects_non_numbers(self):
        with pytest.raises(TypeError):
            B.const("hello")
        with pytest.raises(TypeError):
            B.const(True)

    def test_make_rejects_non_term_children(self):
        with pytest.raises(TypeError):
            T.make("+", B.const(1), 2)


class TestPredicates:
    def test_leaf_kinds(self):
        assert T.is_const(B.const(0))
        assert T.is_symbol(B.symbol("a"))
        assert T.is_get(B.get("x", 3))
        assert T.is_wildcard(B.wildcard("w"))
        assert T.is_leaf(B.const(0))
        assert not T.is_leaf(B.add(B.const(0), B.const(1)))


class TestTraversal:
    def test_subterms_distinct(self):
        x = B.get("x", 0)
        term = B.add(x, x)
        subs = list(T.subterms(term))
        assert subs == [term, x]

    def test_term_size_counts_tree_occurrences(self):
        x = B.get("x", 0)
        shared = B.add(x, x)  # tree size 3
        term = B.mul(shared, shared)  # tree size 7
        assert T.term_size(term) == 7

    def test_term_depth(self):
        assert T.term_depth(B.const(1)) == 1
        assert T.term_depth(B.add(B.const(1), B.const(2))) == 2
        nested = B.add(B.add(B.const(1), B.const(2)), B.const(3))
        assert T.term_depth(nested) == 3

    def test_deep_shared_dag_is_fast(self):
        # 60 doublings: tree size 2^60-ish, DAG size 61.
        term = B.get("x", 0)
        for _ in range(60):
            term = B.add(term, term)
        assert T.term_size(term) == 2 ** 61 - 1
        assert T.term_depth(term) == 61
        assert len(list(T.subterms(term))) == 61

    def test_deep_chain_no_recursion_error(self):
        term = B.get("x", 0)
        for i in range(10_000):
            term = B.add(term, B.const(1))
        assert T.term_depth(term) == 10_001


class TestFold:
    def test_fold_visits_each_distinct_subterm_once(self):
        calls = []
        x = B.get("x", 0)
        term = B.mul(B.add(x, x), x)
        T.fold_term(term, lambda t, cs: calls.append(t))
        assert len(calls) == 3  # x, add, mul

    def test_fold_children_first(self):
        order = []
        term = B.add(B.const(1), B.neg(B.const(2)))
        T.fold_term(term, lambda t, cs: order.append(t.op))
        assert order.index("neg") < order.index("+")


class TestPickle:
    def test_roundtrip_reinterns(self):
        term = B.add(B.get("x", 0), B.vec(B.const(1), B.symbol("a")))
        clone = pickle.loads(pickle.dumps(term))
        assert clone is term  # back through the intern table
