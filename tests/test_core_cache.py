"""Unit tests for rule serialization, caching, and pregen loading."""

import pytest

from repro.core.cache import (
    load_cached_rules,
    rules_from_text,
    rules_to_text,
    spec_fingerprint,
    store_cached_rules,
)
from repro.core.pregen import DEFAULT_RULES_FILE, load_pregenerated_rules
from repro.egraph.rewrite import parse_rewrite
from repro.isa import customized_spec
from repro.ruler import SynthesisConfig


@pytest.fixture
def sample_rules():
    return [
        parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)"),
        parse_rewrite(
            "lift",
            "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3)) => "
            "(VecAdd (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))",
        ),
        parse_rewrite("fold", "(* 0.5 2) => 1"),
    ]


class TestSerialization:
    def test_roundtrip(self, sample_rules):
        text = rules_to_text(sample_rules, header="demo\ntwo lines")
        parsed = rules_from_text(text)
        assert [str(r) for r in parsed] == [str(r) for r in sample_rules]
        assert [r.name for r in parsed] == [r.name for r in sample_rules]

    def test_header_is_comments(self, sample_rules):
        text = rules_to_text(sample_rules, header="hello")
        assert text.startswith("# hello")

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            rules_from_text("name-without-body")


class TestFingerprint:
    def test_stable(self, spec):
        config = SynthesisConfig(max_term_size=4)
        assert spec_fingerprint(spec, config) == spec_fingerprint(
            spec, config
        )

    def test_sensitive_to_spec_and_config(self, spec):
        config = SynthesisConfig(max_term_size=4)
        other_config = SynthesisConfig(max_term_size=5)
        assert spec_fingerprint(spec, config) != spec_fingerprint(
            spec, other_config
        )
        custom = customized_spec(spec, sqrtsgn=True)
        assert spec_fingerprint(spec, config) != spec_fingerprint(
            custom, config
        )


class TestDiskCache:
    def test_store_and_load(self, spec, sample_rules, tmp_path):
        config = SynthesisConfig(max_term_size=3)
        assert (
            load_cached_rules(spec, config, cache_dir=tmp_path) is None
        )
        path = store_cached_rules(
            spec, config, sample_rules, cache_dir=tmp_path
        )
        assert path.exists()
        loaded = load_cached_rules(spec, config, cache_dir=tmp_path)
        assert [str(r) for r in loaded] == [str(r) for r in sample_rules]

    def test_framework_cache_roundtrip(self, spec, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RULE_CACHE", str(tmp_path))
        from repro.core import IsariaFramework
        from repro.ruler import SynthesisConfig as SC

        framework = IsariaFramework(
            spec, synthesis_config=SC(max_term_size=3)
        )
        first = framework.generate_compiler(cache=True)
        assert list(tmp_path.glob("artifact-*.json"))
        second = framework.generate_compiler(cache=True)
        assert second.synthesis is None  # came from cache
        assert len(second.ruleset) == len(first.ruleset)


class TestPregenerated:
    def test_default_rules_exist_and_parse(self):
        if not DEFAULT_RULES_FILE.exists():
            pytest.skip("pregenerated rules not built")
        rules = load_pregenerated_rules()
        assert len(rules) > 300
        # contains the canonical VecAdd lift
        assert any(
            r.lhs.op == "Vec" and r.rhs.op == "VecAdd" for r in rules
        )
