"""Additional e-graph invariants and stress scenarios."""

from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import parse_rewrite
from repro.egraph.runner import RunnerLimits, run_saturation
from repro.lang.parser import parse


class TestChainMerges:
    def test_long_union_chain_collapses(self):
        g = EGraph()
        ids = [g.add_term(parse(f"(Get x {i})")) for i in range(50)]
        for a, b in zip(ids, ids[1:]):
            g.union(a, b)
        g.rebuild()
        roots = {g.find(i) for i in ids}
        assert len(roots) == 1

    def test_merge_classes_with_parents(self):
        g = EGraph()
        terms = [parse(f"(neg (Get x {i}))") for i in range(10)]
        parents = [g.add_term(t) for t in terms]
        children = [g.add_term(parse(f"(Get x {i})")) for i in range(10)]
        for child in children[1:]:
            g.union(children[0], child)
        g.rebuild()
        roots = {g.find(p) for p in parents}
        assert len(roots) == 1

    def test_diamond_congruence(self):
        # f(g(a)), f(g(b)); a=b must merge both levels.
        g = EGraph()
        top_a = g.add_term(parse("(sgn (neg a))"))
        top_b = g.add_term(parse("(sgn (neg b))"))
        mid_a = g.lookup_term(parse("(neg a)"))
        mid_b = g.lookup_term(parse("(neg b)"))
        g.union(g.add_term(parse("a")), g.add_term(parse("b")))
        g.rebuild()
        assert g.equivalent(mid_a, mid_b)
        assert g.equivalent(top_a, top_b)


class TestSaturationScenarios:
    def test_mutual_recursion_rules_stable(self):
        # x <-> neg(neg(x)) both directions: saturates (no blowup).
        g = EGraph()
        g.add_term(parse("(neg (Get x 0))"))
        report = run_saturation(
            g,
            [
                parse_rewrite("fwd", "(neg (neg ?a)) => ?a"),
                parse_rewrite("bwd", "?a => (neg (neg ?a))"),
            ],
            RunnerLimits(max_iterations=10, max_nodes=10_000),
        )
        assert report.saturated
        assert g.n_nodes < 50

    def test_rule_order_does_not_change_closure(self):
        rules = [
            parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)"),
            parse_rewrite("zero", "(+ ?a 0) => ?a"),
            parse_rewrite("sub", "(- ?a ?b) => (+ ?a (neg ?b))"),
        ]
        term = parse("(- (+ (Get x 0) 0) (Get y 0))")

        def closure(rule_order):
            g = EGraph()
            root = g.add_term(term)
            run_saturation(g, rule_order, RunnerLimits(max_iterations=8))
            return g.n_classes, g.find(
                g.lookup_term(parse("(+ (Get x 0) (neg (Get y 0))) "))
            ) == g.find(root)

        a = closure(rules)
        b = closure(list(reversed(rules)))
        assert a[1] and b[1]
        assert a[0] == b[0]

    def test_union_then_saturate_consistent(self):
        g = EGraph()
        a = g.add_term(parse("(* (Get x 0) 2)"))
        b = g.add_term(parse("(+ (Get x 0) (Get x 0))"))
        g.union(a, b)
        run_saturation(
            g,
            [parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)")],
            RunnerLimits(max_iterations=4),
        )
        assert g.equivalent(a, b)
        # nodes of both representations coexist in one class
        ops = {n[0] for n in g.eclass(a).nodes}
        assert {"*", "+"} <= ops
