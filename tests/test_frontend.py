"""Unit tests for the symbolic-evaluation front end."""

import pytest

from repro.compiler.frontend import (
    SymArray,
    SymScalar,
    program_from_outputs,
    scalar_outputs,
    sym_sgn,
    sym_sqrt,
    trace_kernel,
)
from repro.lang import builders as B
from repro.lang.parser import parse, to_sexpr


class TestSymScalar:
    def test_operators_build_terms(self):
        x = SymArray("x", 4)
        expr = (x[0] + x[1]) * 2 - x[2] / x[3]
        assert expr.term == parse(
            "(- (* (+ (Get x 0) (Get x 1)) 2) (/ (Get x 2) (Get x 3)))"
        )

    def test_reflected_operators(self):
        x = SymArray("x", 1)
        assert (1 + x[0]).term == parse("(+ 1 (Get x 0))")
        assert (1 - x[0]).term == parse("(- 1 (Get x 0))")
        assert (2 * x[0]).term == parse("(* 2 (Get x 0))")
        assert (2 / x[0]).term == parse("(/ 2 (Get x 0))")

    def test_unary(self):
        x = SymArray("x", 1)
        assert (-x[0]).term == parse("(neg (Get x 0))")
        assert sym_sqrt(x[0]).term == parse("(sqrt (Get x 0))")
        assert sym_sgn(4).term == parse("(sgn 4)")

    def test_lift_rejects_junk(self):
        with pytest.raises(TypeError):
            SymScalar.lift("nope")
        with pytest.raises(TypeError):
            SymScalar(42)

    def test_index_bounds(self):
        x = SymArray("x", 2)
        with pytest.raises(IndexError):
            x[2]
        assert len(x) == 2


class TestProgramFromOutputs:
    def test_pads_to_width(self):
        outputs = [B.get("x", i) for i in range(5)]
        program = program_from_outputs(outputs, width=4)
        assert len(program.args) == 2
        assert to_sexpr(program.args[1]) == (
            "(Vec (Get x 4) 0 0 0)"
        )

    def test_exact_multiple_not_padded(self):
        outputs = [B.get("x", i) for i in range(4)]
        program = program_from_outputs(outputs, width=4)
        assert len(program.args) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            program_from_outputs([], width=4)


class TestTraceKernel:
    def test_trace_and_recover_outputs(self):
        def kern(x, y):
            return [x[i] + y[i] for i in range(3)]

        program = trace_kernel("add3", kern, {"x": 3, "y": 3}, width=4)
        assert program.output_len == 3
        assert program.padded_len == 4
        outs = scalar_outputs(program)
        assert len(outs) == 3
        assert outs[0] == parse("(+ (Get x 0) (Get y 0))")

    def test_control_flow_disappears(self):
        # Python loops and conditionals run at trace time (symbolic
        # evaluation): only dataflow remains.
        def kern(x):
            acc = x[0]
            for i in range(1, 4):
                if i % 2 == 0:
                    acc = acc + x[i]
                else:
                    acc = acc * x[i]
            return [acc]

        program = trace_kernel("mix", kern, {"x": 4}, width=4)
        assert scalar_outputs(program)[0] == parse(
            "(+ (* (+ (* (Get x 0) (Get x 1)) (Get x 2)) (Get x 3)) 0)"
        ) or scalar_outputs(program)[0] == parse(
            "(* (+ (* (Get x 0) (Get x 1)) (Get x 2)) (Get x 3))"
        )

    def test_plain_numbers_lift(self):
        def kern(x):
            return [x[0], 7]

        program = trace_kernel("lit", kern, {"x": 1}, width=4)
        assert scalar_outputs(program)[1] == B.const(7)
