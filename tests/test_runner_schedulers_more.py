"""Scheduler interplay with saturation: bans, thresholds, recovery."""

from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import parse_rewrite
from repro.egraph.runner import (
    BackoffScheduler,
    RunnerLimits,
    run_saturation,
)
from repro.lang.parser import parse


class TestBanRecovery:
    def test_banned_rule_fires_after_ban(self):
        # comm floods past a tiny threshold, gets banned, and must
        # still complete the closure once unbanned.
        g = EGraph()
        root = g.add_term(parse("(+ (+ (+ a b) c) d)"))
        report = run_saturation(
            g,
            [parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)")],
            RunnerLimits(
                max_iterations=12, match_limit=2, ban_length=1
            ),
        )
        assert report.saturated
        assert g.lookup_term(parse("(+ d (+ (+ a b) c))")) == g.find(
            root
        )

    def test_custom_scheduler_injection(self):
        g = EGraph()
        g.add_term(parse("(+ a b)"))
        scheduler = BackoffScheduler(match_limit=100, ban_length=1)
        report = run_saturation(
            g,
            [parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)")],
            RunnerLimits(max_iterations=5),
            scheduler=scheduler,
        )
        assert report.saturated
        assert not scheduler.any_banned(99)


class TestSaturationWithMixedRules:
    def test_identity_plus_structural(self):
        g = EGraph()
        root = g.add_term(parse("(Vec (Get x 0) (Get x 1) (Get x 2) "
                                "(Get x 3))"))
        rules = [
            parse_rewrite("pad", "?a => (+ ?a 0)"),
            parse_rewrite(
                "lift",
                "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3))"
                " => (VecAdd (Vec ?a0 ?a1 ?a2 ?a3) "
                "(Vec ?b0 ?b1 ?b2 ?b3))",
            ),
        ]
        run_saturation(g, rules, RunnerLimits(max_iterations=6))
        # padding every lane enables the lift: the class must contain
        # (VecAdd (Vec x...) (Vec 0 0 0 0))
        target = parse(
            "(VecAdd (Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3))"
            " (Vec 0 0 0 0))"
        )
        assert g.lookup_term(target) == g.find(root)

    def test_frontier_and_bans_together(self):
        g = EGraph()
        g.add_term(parse("(+ (+ (+ a b) c) d)"))
        report = run_saturation(
            g,
            [
                parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)"),
                parse_rewrite(
                    "assoc", "(+ (+ ?a ?b) ?c) => (+ ?a (+ ?b ?c))"
                ),
            ],
            RunnerLimits(
                max_iterations=8, match_limit=4, ban_length=1,
                max_nodes=5_000,
            ),
            frontier=True,
        )
        assert report.n_iterations >= 2
        assert g.n_nodes > 8  # explored beyond the original term
