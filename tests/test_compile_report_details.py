"""CompileReport bookkeeping and options plumbing."""

import dataclasses

from repro.compiler.compile import CompileOptions, CompileReport, RoundReport
from repro.egraph.runner import RunnerLimits


class TestCompileOptions:
    def test_defaults_sane(self):
        options = CompileOptions()
        assert options.phased and options.pruning
        assert options.expansion_start_round == 1
        assert options.max_rounds >= 2
        # ban lengths must leave room for retries within the budget
        for limits in (
            options.expansion_limits,
            options.compilation_limits,
            options.optimization_limits,
        ):
            assert limits.ban_length < limits.max_iterations

    def test_replace_produces_new_options(self):
        options = CompileOptions()
        ablated = dataclasses.replace(options, phased=False)
        assert not ablated.phased
        assert options.phased

    def test_custom_limits(self):
        limits = RunnerLimits(max_iterations=2, max_nodes=100,
                              time_limit=1.0)
        options = CompileOptions(expansion_limits=limits)
        assert options.expansion_limits.max_nodes == 100


class TestCompileReport:
    def _round(self, i, cost):
        return RoundReport(
            index=i,
            expansion=None,
            compilation=None,
            extracted_cost=cost,
            n_nodes=10,
            n_classes=5,
        )

    def test_eqsat_call_count(self):
        report = CompileReport(initial_cost=100, final_cost=10)
        assert report.n_eqsat_calls == 0
        report.rounds.append(self._round(0, 50))
        assert report.n_eqsat_calls == 0  # both phases None
        from repro.egraph.runner import RunnerReport, StopReason

        sat = RunnerReport(stop_reason=StopReason.SATURATED)
        report.rounds.append(
            RoundReport(
                index=1,
                expansion=sat,
                compilation=sat,
                extracted_cost=20,
                n_nodes=10,
                n_classes=5,
            )
        )
        report.optimization = sat
        assert report.n_eqsat_calls == 3

    def test_speedup_estimate(self):
        report = CompileReport(initial_cost=100.0, final_cost=10.0)
        assert report.speedup_estimate == 10.0
        degenerate = CompileReport(initial_cost=100.0, final_cost=0.0)
        assert degenerate.speedup_estimate == float("inf")
