"""Value-model corner coverage."""

import math
from fractions import Fraction

from repro.interp.value import (
    UNDEFINED,
    is_scalar,
    is_vector,
    values_equal,
)


class TestScalarPredicates:
    def test_numbers(self):
        assert is_scalar(1)
        assert is_scalar(1.5)
        assert is_scalar(Fraction(1, 3))

    def test_non_numbers(self):
        assert not is_scalar(True)
        assert not is_scalar("x")
        assert not is_scalar((1, 2))
        assert not is_scalar(UNDEFINED)

    def test_vectors(self):
        assert is_vector((1, 2))
        assert is_vector(())
        assert not is_vector([1, 2])
        assert not is_vector(3)


class TestValuesEqualCorners:
    def test_nan_equals_nan(self):
        assert values_equal(float("nan"), float("nan"))
        assert not values_equal(float("nan"), 0.0)

    def test_infinities(self):
        assert values_equal(math.inf, math.inf)
        assert not values_equal(math.inf, -math.inf)

    def test_fraction_vs_float_tolerance(self):
        assert values_equal(Fraction(1, 3), 1 / 3)
        assert not values_equal(Fraction(1, 3), 0.3334)

    def test_nested_lists_of_vectors(self):
        a = ((1.0, 2.0), (3.0, 4.0))
        b = ((1.0, 2.0), (3.0, 4.0 + 1e-13))
        assert values_equal(a, b)
        assert not values_equal(a, ((1.0, 2.0),))

    def test_zero_signs(self):
        assert values_equal(0.0, -0.0)
        assert values_equal(Fraction(0), 0.0)


class TestUndefinedSingleton:
    def test_identity(self):
        from repro.interp.value import _Undefined

        assert _Undefined() is UNDEFINED
        assert not UNDEFINED
        assert repr(UNDEFINED) == "UNDEFINED"
