"""Unit tests for lowering compiled terms onto the machine."""

import pytest

from repro.compiler.lowering import LoweringError, lower_program
from repro.lang.parser import parse
from repro.machine import Machine


@pytest.fixture(scope="module")
def machine(spec):
    return Machine(spec)


def lower_and_run(spec, machine, text, memory, arrays):
    program = lower_program(parse(text), spec, arrays)
    return machine.run(program, memory)


class TestVecLiteralStrategies:
    def test_contiguous_run_is_one_load(self, spec):
        program = lower_program(
            parse("(List (Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3)))"),
            spec,
            {"x": 4},
        )
        assert program.count("v.load") == 1
        assert program.count("v.insert") == 0

    def test_constant_vector(self, spec, machine):
        res = lower_and_run(
            spec, machine, "(List (Vec 1 2 3 4))",
            {"out": [0.0] * 4}, {},
        )
        assert res.array("out") == [1.0, 2.0, 3.0, 4.0]

    def test_two_window_shuffle(self, spec, machine):
        text = "(List (Vec (Get x 1) (Get y 2) (Get x 0) (Get y 3)))"
        program = lower_program(parse(text), spec, {"x": 4, "y": 4})
        assert program.count("v.shuffle") == 1
        assert program.count("v.insert") == 0
        res = machine.run(
            program,
            {"x": [1, 2, 3, 4], "y": [10, 20, 30, 40], "out": [0.0] * 4},
        )
        assert res.array("out") == [2.0, 30.0, 1.0, 40.0]

    def test_permuted_single_window(self, spec, machine):
        text = "(List (Vec (Get x 3) (Get x 2) (Get x 1) (Get x 0)))"
        program = lower_program(parse(text), spec, {"x": 4})
        assert program.count("v.load") == 1
        res = machine.run(
            program, {"x": [1, 2, 3, 4], "out": [0.0] * 4}
        )
        assert res.array("out") == [4.0, 3.0, 2.0, 1.0]

    def test_gets_and_zeros_shuffle_with_consts(self, spec, machine):
        text = "(List (Vec (Get x 0) (Get x 1) (Get x 2) 0))"
        program = lower_program(parse(text), spec, {"x": 4})
        assert program.count("v.insert") == 0
        res = machine.run(
            program, {"x": [5, 6, 7, 8], "out": [0.0] * 4}
        )
        assert res.array("out") == [5.0, 6.0, 7.0, 0.0]

    def test_three_windows_fall_back_to_inserts(self, spec):
        text = (
            "(List (Vec (Get x 0) (Get y 0) (Get z 0) (Get x 5)))"
        )
        program = lower_program(
            parse(text), spec, {"x": 8, "y": 4, "z": 4}
        )
        assert program.count("v.insert") >= 3

    def test_computed_lanes_use_inserts(self, spec, machine):
        text = "(List (Vec (+ (Get x 0) (Get x 1)) 0 0 0))"
        program = lower_program(parse(text), spec, {"x": 4})
        assert program.count("v.insert") == 1
        res = machine.run(
            program, {"x": [3, 4, 0, 0], "out": [0.0] * 4}
        )
        assert res.array("out") == [7.0, 0.0, 0.0, 0.0]

    def test_identical_computed_lanes_splat(self, spec):
        text = (
            "(List (Vec (+ (Get x 0) 1) (+ (Get x 0) 1) "
            "(+ (Get x 0) 1) (+ (Get x 0) 1)))"
        )
        program = lower_program(parse(text), spec, {"x": 4})
        assert program.count("v.splat") == 1


class TestVectorOps:
    def test_vecadd_end_to_end(self, spec, machine):
        text = (
            "(List (VecAdd (Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3))"
            " (Vec (Get y 0) (Get y 1) (Get y 2) (Get y 3))))"
        )
        res = lower_and_run(
            spec, machine, text,
            {"x": [1, 2, 3, 4], "y": [5, 6, 7, 8], "out": [0.0] * 4},
            {"x": 4, "y": 4},
        )
        assert res.array("out") == [6.0, 8.0, 10.0, 12.0]

    def test_cse_shares_subterms(self, spec):
        text = (
            "(List (VecMul (Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3))"
            " (Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3))))"
        )
        program = lower_program(parse(text), spec, {"x": 4})
        assert program.count("v.load") == 1  # shared Vec literal

    def test_multi_chunk_output_stores(self, spec):
        text = (
            "(List (Vec 1 2 3 4) (Vec 5 6 7 8))"
        )
        program = lower_program(parse(text), spec, {})
        assert program.count("v.store") == 2


class TestErrors:
    def test_concat_unsupported(self, spec):
        with pytest.raises(LoweringError):
            lower_program(
                parse("(List (Concat (Vec 1 2 3 4) (Vec 5 6 7 8)))"),
                spec, {},
            )

    def test_wrong_width_vec(self, spec):
        with pytest.raises(LoweringError):
            lower_program(parse("(List (Vec 1 2))"), spec, {})

    def test_top_level_must_be_list(self, spec):
        with pytest.raises(LoweringError):
            lower_program(parse("(Vec 1 2 3 4)"), spec, {})

    def test_scalar_chunk_rejected(self, spec):
        with pytest.raises(LoweringError):
            lower_program(parse("(List (+ 1 2))"), spec, {})

    def test_free_variable_rejected(self, spec):
        with pytest.raises(LoweringError):
            lower_program(parse("(List (Vec a 0 0 0))"), spec, {})

    def test_unknown_array_rejected(self, spec):
        with pytest.raises(LoweringError):
            lower_program(
                parse("(List (Vec (Get ghost 0) 0 0 0))"), spec, {}
            )

    def test_out_of_bounds_get(self, spec):
        with pytest.raises(LoweringError):
            lower_program(
                parse("(List (Vec (Get x 9) 0 0 0))"), spec, {"x": 4}
            )
