"""SuiteRow-to-report integration on real (small) measurements."""

from repro.bench import run_suite, speedup_table_md, suite_report_md
from repro.kernels import matmul_kernel


class TestRealRowsToReport:
    def test_report_from_measured_rows(self, spec):
        rows = run_suite(
            [matmul_kernel(2, 2, 2), matmul_kernel(2, 3, 3)],
            spec,
            systems=("scalar", "slp", "nature"),
        )
        report = suite_report_md(rows, "Tiny sweep")
        assert "matmul-2x2x2" in report
        assert "matmul-2x3x3" in report
        assert "Correctness:" in report
        # all measured systems were correct
        assert "Failures" not in report

    def test_speedup_table_alignment_with_cycles(self, spec):
        rows = run_suite(
            [matmul_kernel(2, 2, 2)], spec, systems=("scalar", "slp")
        )
        table = speedup_table_md(rows, systems=("slp",))
        scalar_cycles = rows[0].cycles("scalar")
        assert f"| {scalar_cycles} |" in table
