"""Extraction/cost-model consistency: the head protocol must agree
with the term-level cost function."""

import pytest

from repro.egraph.egraph import EGraph
from repro.egraph.extract import Extractor, extract_best
from repro.egraph.rewrite import parse_rewrite
from repro.egraph.runner import RunnerLimits, run_saturation
from repro.lang.parser import parse


TERMS = [
    "(+ (Get x 0) (Get y 0))",
    "(Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3))",
    "(Vec (Get x 0) (Get x 2) (Get x 1) (Get x 3))",
    "(Vec 1 2 3 4)",
    "(Vec (+ (Get x 0) 1) (Get x 1) (Get x 2) (Get x 3))",
    "(VecMAC (Vec 1 1 1 1) (Vec (Get x 0) (Get x 1) (Get x 2) "
    "(Get x 3)) (Vec (Get y 0) (Get y 1) (Get y 2) (Get y 3)))",
    "(List (Vec 1 2 3 4) (Concat (Vec 1 2 3 4) (Vec 5 6 7 8)))",
    "(sqrt (/ (Get x 0) (Get x 1)))",
]


class TestHeadProtocolAgreement:
    @pytest.mark.parametrize("text", TERMS)
    def test_extracted_cost_equals_term_cost(self, cost_model, text):
        term = parse(text)
        g = EGraph()
        root = g.add_term(term)
        cost, extracted = extract_best(g, root, cost_model)
        assert extracted == term
        assert cost == pytest.approx(cost_model.term_cost(term))

    def test_after_saturation_cost_still_exact(self, cost_model):
        g = EGraph()
        root = g.add_term(parse("(Vec (+ (Get x 0) 0) (Get x 1) "
                                "(Get x 2) (Get x 3))"))
        run_saturation(
            g,
            [parse_rewrite("id", "(+ ?a 0) => ?a")],
            RunnerLimits(max_iterations=4),
        )
        cost, extracted = extract_best(g, root, cost_model)
        # the contiguous-load representation must win
        assert extracted == parse(
            "(Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3))"
        )
        assert cost == pytest.approx(cost_model.term_cost(extracted))

    def test_vec_shape_drives_choice(self, cost_model):
        # Given the choice between a permuted-gets Vec and a
        # contiguous one, extraction must take the cheap load shape.
        g = EGraph()
        permuted = g.add_term(
            parse("(Vec (Get x 1) (Get x 0) (Get x 2) (Get x 3))")
        )
        contiguous = g.add_term(
            parse("(Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3))")
        )
        g.union(permuted, contiguous)  # pretend they are equal
        g.rebuild()
        _cost, term = extract_best(g, permuted, cost_model)
        assert term == parse(
            "(Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3))"
        )

    def test_extractor_reuse_across_classes(self, cost_model):
        g = EGraph()
        a = g.add_term(parse("(+ (Get x 0) (Get x 1))"))
        b = g.add_term(parse("(neg (Get x 0))"))
        extractor = Extractor(g, cost_model)
        assert extractor.best_cost(a) == pytest.approx(
            cost_model.term_cost(parse("(+ (Get x 0) (Get x 1))"))
        )
        assert extractor.best_cost(b) == pytest.approx(
            cost_model.term_cost(parse("(neg (Get x 0))"))
        )
