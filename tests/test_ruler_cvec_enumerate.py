"""Unit tests for characteristic vectors and term enumeration."""

from fractions import Fraction

import pytest

from repro.lang.parser import parse
from repro.ruler.cvec import CvecSpec, cvec_of
from repro.ruler.enumerate import enumerate_terms


class TestCvec:
    def test_equal_terms_equal_cvecs(self, spec):
        interp = spec.interpreter()
        grid = CvecSpec.make(("a", "b"), n_random=8, seed=1)
        assert cvec_of(parse("(+ a b)"), interp, grid) == cvec_of(
            parse("(+ b a)"), interp, grid
        )

    def test_different_terms_differ(self, spec):
        interp = spec.interpreter()
        grid = CvecSpec.make(("a", "b"), n_random=8, seed=1)
        assert cvec_of(parse("(+ a b)"), interp, grid) != cvec_of(
            parse("(- a b)"), interp, grid
        )

    def test_single_lane_vector_op_matches_scalar(self, spec):
        # The §3.1 reduction: VecAdd on scalars fingerprints like +.
        interp = spec.interpreter()
        grid = CvecSpec.make(("a", "b"), n_random=8, seed=1)
        assert cvec_of(parse("(VecAdd a b)"), interp, grid) == cvec_of(
            parse("(+ a b)"), interp, grid
        )

    def test_all_undefined_is_none(self, spec):
        interp = spec.interpreter()
        grid = CvecSpec.make(("a",), n_random=4, seed=1)
        assert cvec_of(parse("(/ a 0)"), interp, grid) is None

    def test_undefined_positions_distinguish(self, spec):
        interp = spec.interpreter()
        grid = CvecSpec.make(("a", "b"), n_random=8, seed=1)
        # (/ (* a b) b) equals a where defined but differs at b = 0.
        assert cvec_of(
            parse("(/ (* a b) b)"), interp, grid
        ) != cvec_of(parse("a"), interp, grid)

    def test_int_and_fraction_normalize(self, spec):
        interp = spec.interpreter()
        grid = CvecSpec.make(("a",), n_random=4, seed=2)
        # 2a and a+a must fingerprint identically even if one path
        # yields ints and the other Fractions.
        assert cvec_of(parse("(+ a a)"), interp, grid) == cvec_of(
            parse("(* 2 a)"), interp, grid
        )

    def test_corner_values_present(self):
        grid = CvecSpec.make(("a",), n_random=0, seed=0)
        values = {env["a"] for env in grid.envs}
        assert Fraction(0) in values and Fraction(-1) in values


class TestEnumeration:
    def test_atoms_enumerated(self, spec):
        grid = CvecSpec.make(("a", "b"), n_random=8, seed=0)
        result = enumerate_terms(spec, grid, max_size=1)
        reps = set(result.representatives.values())
        assert parse("a") in reps
        assert parse("0") in reps

    def test_pairs_are_cvec_equal(self, spec):
        interp = spec.interpreter()
        grid = CvecSpec.make(("a", "b"), n_random=8, seed=0)
        result = enumerate_terms(spec, grid, max_size=3)
        assert result.pairs
        for rep, newcomer in result.pairs[:50]:
            assert cvec_of(rep, interp, grid) == cvec_of(
                newcomer, interp, grid
            )

    def test_one_representative_per_cvec(self, spec):
        grid = CvecSpec.make(("a", "b", "c"), n_random=8, seed=0)
        result = enumerate_terms(spec, grid, max_size=3)
        assert len(result.representatives) == result.n_representatives
        # commutativity shows up as a pair, not as two representatives
        reps = set(result.representatives.values())
        assert not (parse("(+ a b)") in reps and parse("(+ b a)") in reps)

    def test_op_allowlist_restricts(self, spec):
        grid = CvecSpec.make(("a", "b"), n_random=8, seed=0)
        result = enumerate_terms(
            spec, grid, max_size=3, op_allowlist=("+",)
        )
        for term in result.representatives.values():
            assert all(
                sub.op in ("+", "Const", "Symbol")
                for sub in _subterms(term)
            )

    def test_deadline_aborts(self, spec):
        grid = CvecSpec.make(("a", "b", "c"), n_random=8, seed=0)
        result = enumerate_terms(spec, grid, max_size=6, deadline=0.0)
        assert result.aborted


class TestDeadlineMidSize:
    """The budget aborts *inside* a size, not just between sizes.

    A deterministic fake clock (one tick per deadline check) pins down
    exactly where the abort lands, on both cvec backends.
    """

    def _fake_clock(self, monkeypatch):
        ticks = iter(range(100_000))
        monkeypatch.setattr(
            "repro.ruler.enumerate.time.monotonic",
            lambda: float(next(ticks)),
        )

    @pytest.mark.parametrize("legacy", [False, True], ids=["batched", "legacy"])
    def test_aborts_during_atoms(self, spec, monkeypatch, legacy):
        if legacy:
            monkeypatch.setenv("REPRO_LEGACY_CVEC", "1")
        grid = CvecSpec.make(("a", "b"), n_random=4, seed=0)
        self._fake_clock(monkeypatch)
        # Ticks 1 and 2 pass the deadline check; tick 3 aborts — on
        # the third atom, before any composite size starts.
        result = enumerate_terms(spec, grid, max_size=2, deadline=2.0)
        assert result.aborted
        assert 0 < result.n_enumerated < 4  # a, b, 0, 1
        assert all(not t.args for t in result.representatives.values())

    @pytest.mark.parametrize("legacy", [False, True], ids=["batched", "legacy"])
    def test_aborts_mid_size(self, spec, monkeypatch, legacy):
        if legacy:
            monkeypatch.setenv("REPRO_LEGACY_CVEC", "1")
        grid = CvecSpec.make(("a", "b"), n_random=4, seed=0)
        full = enumerate_terms(spec, grid, max_size=2)
        self._fake_clock(monkeypatch)
        # All four atoms fit the budget; the abort lands a few
        # candidates into size 2, leaving a partial composite pool.
        result = enumerate_terms(spec, grid, max_size=2, deadline=8.0)
        assert result.aborted
        assert 4 < result.n_enumerated < full.n_enumerated
        assert any(t.args for t in result.representatives.values())


def _subterms(term):
    from repro.lang.term import subterms

    return subterms(term)
