"""The compile service: protocol, registry, serve loop, and clients.

Serve-loop tests drive a real :class:`CompileService` on a private
event loop with the real registry, compiler, and pipeline — no mocks
— using tiny traced kernels and tight saturation limits so each live
compile stays well under a second.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.compiler.compile import CompileOptions
from repro.compiler.frontend import trace_kernel
from repro.compiler.pipeline import compile_many
from repro.egraph.runner import RunnerLimits
from repro.kernels.specs import kernel_spec_hash
from repro.obs import ListSink, Tracer, use_tracer
from repro.service import (
    ArtifactRegistry,
    AsyncCompileClient,
    BackgroundServer,
    CompileClient,
    ProtocolError,
    RegistryError,
    ServiceError,
    protocol,
)
from repro.service.registry import RegistryEntry
from repro.service.server import CompileService, ServiceConfig


def _quick_options() -> CompileOptions:
    """Tight budgets: tiny kernels vectorize in a couple hundred ms."""
    return CompileOptions(
        max_rounds=1,
        expansion_limits=RunnerLimits(
            max_iterations=2, max_nodes=2_000, time_limit=2.0
        ),
        compilation_limits=RunnerLimits(
            max_iterations=4, max_nodes=4_000, time_limit=2.0
        ),
        optimization_limits=RunnerLimits(
            max_iterations=2, max_nodes=2_000, time_limit=2.0
        ),
    )


def _vadd(name: str = "vadd4"):
    return trace_kernel(
        name, lambda a, b: [a[i] + b[i] for i in range(4)],
        {"a": 4, "b": 4}, width=4,
    )


def _vmul(name: str = "vmul4"):
    return trace_kernel(
        name, lambda a, b: [a[i] * b[i] for i in range(4)],
        {"a": 4, "b": 4}, width=4,
    )


#: A wire kernel that fails inside the pipeline (unknown symbols), so
#: batch-isolation paths get a deterministic KernelCompileError.
_BAD_WIRE = {
    "name": "bad",
    "term": "(Prog (Vec (+ a0 zz0) (+ a1 zz1) (+ a2 zz2) (+ a3 zz3)))",
    "output": "out",
    "output_len": 4,
    "arrays": {"a": 4},
    "width": 4,
}


@pytest.fixture
def registry(tmp_path):
    return ArtifactRegistry(tmp_path / "registry")


def _run_with_service(registry, body, **config):
    """Run ``await body(service, client)`` against a live server."""
    config.setdefault("port", 0)
    config.setdefault("batch_window", 0.05)

    async def main():
        service = CompileService(
            config=ServiceConfig(**config), registry=registry
        )
        task = asyncio.create_task(service.run())
        await service._ready.wait()
        try:
            async with AsyncCompileClient(port=service.port) as client:
                result = await body(service, client)
        finally:
            service.request_stop()
            await asyncio.wait_for(task, timeout=30)
        return result

    return asyncio.run(main())


def _compile_msg(kernel, options=None, **extra):
    message = {
        "op": "compile",
        "isa": "fusion-g3",
        "kernel": kernel if isinstance(kernel, dict)
        else protocol.kernel_to_wire(kernel),
    }
    if options is not None:
        message["options"] = protocol.options_to_wire(options)
    message.update(extra)
    return message


class TestProtocol:
    def test_message_framing_round_trips(self):
        line = protocol.encode_message({"op": "ping", "id": 7})
        assert line.endswith(b"\n")
        assert protocol.decode_message(line) == {"op": "ping", "id": 7}

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            protocol.decode_message(b"nope\n")

    def test_decode_rejects_non_objects(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.decode_message(b"[1, 2]\n")

    def test_decode_rejects_non_utf8(self):
        with pytest.raises(ProtocolError, match="UTF-8"):
            protocol.decode_message(b"\xff\xfe\n")

    def test_kernel_round_trips_with_same_spec_hash(self):
        kernel = _vadd()
        back = protocol.kernel_from_wire(protocol.kernel_to_wire(kernel))
        assert kernel_spec_hash(back) == kernel_spec_hash(kernel)
        assert back.arrays == kernel.arrays

    def test_kernel_from_wire_rejects_missing_fields(self):
        wire = protocol.kernel_to_wire(_vadd())
        del wire["arrays"]
        with pytest.raises(ProtocolError, match="malformed kernel"):
            protocol.kernel_from_wire(wire)

    def test_options_round_trip_preserves_digest(self):
        options = _quick_options()
        wire = protocol.options_to_wire(options)
        back = protocol.options_from_wire(wire)
        assert protocol.options_digest(back) == protocol.options_digest(
            options
        )

    def test_options_from_wire_none_is_defaults(self):
        assert protocol.options_from_wire(None) == CompileOptions()

    def test_options_from_wire_rejects_non_dict(self):
        with pytest.raises(ProtocolError, match="options"):
            protocol.options_from_wire([1])

    def test_result_key_separates_every_component(self):
        base = protocol.result_key("fp", "kh", "od")
        assert protocol.result_key("fp2", "kh", "od") != base
        assert protocol.result_key("fp", "kh2", "od") != base
        assert protocol.result_key("fp", "kh", "od2") != base


class TestRegistry:
    def test_bootstrap_publishes_base_isa_artifact(self, registry):
        entry = registry.entry_for("fusion-g3")
        assert isinstance(entry, RegistryEntry)
        path = registry.artifact_path(entry.fingerprint)
        assert path.exists()
        # Second resolution is the in-memory memo (same object).
        assert registry.entry_for("fusion-g3") is entry

    def test_fresh_registry_finds_published_artifact(self, registry):
        entry = registry.entry_for("fusion-g3")
        again = ArtifactRegistry(registry.root)
        sink = ListSink()
        with use_tracer(Tracer(sink)):
            entry2 = again.entry_for("fusion-g3")
        assert entry2.fingerprint == entry.fingerprint
        assert any(
            e["name"] == "registry.artifact_hit" for e in sink.events
        )

    def test_unknown_isa_raises_with_known_names(self, registry):
        with pytest.raises(RegistryError, match="fusion-g3"):
            registry.entry_for("not-an-isa")

    def test_known_isa_without_artifact_raises(self, registry):
        with pytest.raises(RegistryError, match="no artifact published"):
            registry.entry_for("fusion-g3+mulsub+sqrtsgn")

    def test_corrupt_artifact_is_logged_miss_not_error(self, registry):
        registry.entry_for("fusion-g3")
        (registry.artifacts_dir / "junk.json").write_text("{truncated")
        sink = ListSink()
        with use_tracer(Tracer(sink)):
            entry = ArtifactRegistry(registry.root).entry_for("fusion-g3")
        assert entry.compiler is not None
        corrupt = [e for e in sink.events if e["name"] == "registry.corrupt"]
        assert len(corrupt) == 1
        assert "junk.json" in corrupt[0]["attrs"]["path"]

    def test_result_cache_round_trips(self, registry):
        payload = {"kernel": "k", "final_cost": 1.0}
        registry.store_result("abc", payload)
        assert registry.load_result("abc") == payload
        assert registry.load_result("missing") is None

    def test_truncated_result_is_logged_miss(self, registry):
        registry.store_result("abc", {"kernel": "k"})
        path = registry.result_path("abc")
        path.write_text(path.read_text()[:10])
        sink = ListSink()
        with use_tracer(Tracer(sink)):
            assert registry.load_result("abc") is None
        assert any(e["name"] == "registry.corrupt" for e in sink.events)

    def test_stats_counts_layers(self, registry):
        registry.entry_for("fusion-g3")
        registry.store_result("abc", {"kernel": "k"})
        stats = registry.stats()
        assert len(stats["artifacts"]) == 1
        assert stats["artifacts"][0]["isa"] == "fusion-g3"
        assert stats["n_results"] == 1
        assert stats["corrupt_artifacts"] == 0


class TestServeLoop:
    def test_compile_round_trip_matches_direct_compile_many(self, registry):
        kernel = _vadd()
        options = _quick_options()

        async def body(service, client):
            return await client.compile(kernel, options=options)

        response = _run_with_service(registry, body)
        assert response["cached"] is False and response["deduped"] is False
        direct = compile_many(
            registry.compiler_for("fusion-g3"), [kernel], options
        )[0]
        expected = protocol.compiled_to_wire(
            direct, kernel_spec_hash(kernel)
        )
        assert response["result"] == expected

    def test_concurrent_identical_requests_compile_once(self, registry):
        kernel = _vadd()
        options = _quick_options()

        async def body(service, client):
            async with AsyncCompileClient(port=service.port) as second:
                task_a = asyncio.create_task(
                    client.compile(kernel, options=options)
                )
                await asyncio.sleep(0.05)  # a registers in-flight first
                task_b = asyncio.create_task(
                    second.compile(kernel, options=options)
                )
                return await asyncio.gather(task_a, task_b), service

        (first, second_), service = _run_with_service(
            registry, body, batch_window=0.3
        )
        assert service.compiled == 1
        assert service.dedup_hits == 1
        assert first["result"] == second_["result"]
        assert second_["deduped"] is True

    def test_cache_hit_answers_without_pool_dispatch(self, registry):
        kernel = _vadd()
        options = _quick_options()

        async def compile_once(service, client):
            return await client.compile(kernel, options=options)

        _run_with_service(registry, compile_once)

        async def repeat(service, client):
            response = await client.compile(kernel, options=options)
            return response, service

        response, service = _run_with_service(registry, repeat)
        assert response["cached"] is True
        assert service.cache_hits == 1
        assert service.compiled == 0  # nothing reached the batcher
        assert service.batches == 0

    def test_waiting_requests_batch_together(self, registry):
        kernels = [_vadd(), _vmul()]
        options = _quick_options()

        async def body(service, client):
            async with AsyncCompileClient(port=service.port) as second:
                responses = await asyncio.gather(
                    client.compile(kernels[0], options=options),
                    second.compile(kernels[1], options=options),
                )
            return responses, service

        responses, service = _run_with_service(
            registry, body, batch_window=0.5
        )
        assert all(r["ok"] for r in responses)
        assert service.compiled == 2
        assert service.batches == 1  # one window swallowed both

    def test_failing_kernel_is_isolated_from_its_batchmates(self, registry):
        options = _quick_options()

        async def body(service, client):
            async with AsyncCompileClient(port=service.port) as second:
                good_task = asyncio.create_task(
                    client.compile(_vadd(), options=options)
                )
                bad = second.request(_compile_msg(_BAD_WIRE, options))
                bad_exc = None
                try:
                    await bad
                except ServiceError as exc:
                    bad_exc = exc
                return await good_task, bad_exc

        good, bad_exc = _run_with_service(registry, body, batch_window=0.5)
        assert good["ok"] and good["result"]["kernel"] == "vadd4"
        assert bad_exc is not None and bad_exc.kind == "compile"
        assert "bad" in bad_exc.message

    def test_graceful_shutdown_drains_pending_compiles(self, registry):
        kernel = _vadd()
        options = _quick_options()

        async def body(service, client):
            async with AsyncCompileClient(port=service.port) as second:
                compile_task = asyncio.create_task(
                    client.compile(kernel, options=options)
                )
                await asyncio.sleep(0.05)  # let it enqueue
                shutdown = await second.request({"op": "shutdown"})
                response = await compile_task
            return shutdown, response

        shutdown, response = _run_with_service(
            registry, body, batch_window=0.3
        )
        assert shutdown["ok"]
        assert response["ok"] and response["result"]["kernel"] == "vadd4"

    def test_malformed_line_answers_error_and_connection_survives(
        self, registry
    ):
        async def body(service, client):
            client._writer.write(b"this is not json\n")
            await client._writer.drain()
            line = await client._reader.readline()
            error = protocol.decode_message(line)
            ping = await client.ping()
            return error, ping

        error, ping = _run_with_service(registry, body)
        assert error["ok"] is False
        assert error["error"]["kind"] == "protocol"
        assert ping["ok"]

    def test_unknown_isa_is_a_registry_error_response(self, registry):
        async def body(service, client):
            message = _compile_msg(_vadd(), _quick_options())
            message["isa"] = "not-an-isa"
            try:
                await client.request(message)
            except ServiceError as exc:
                return exc
            return None

        exc = _run_with_service(registry, body)
        assert exc is not None and exc.kind == "registry"

    def test_request_id_is_echoed(self, registry):
        async def body(service, client):
            return await client.request({"op": "ping", "id": "req-42"})

        assert _run_with_service(registry, body)["id"] == "req-42"

    def test_stats_op_reports_counters_and_registry(self, registry):
        kernel = _vadd()
        options = _quick_options()

        async def body(service, client):
            await client.compile(kernel, options=options)
            await client.compile(kernel, options=options)
            return (await client.request({"op": "stats"}))["stats"]

        stats = _run_with_service(registry, body)
        assert stats["compile_requests"] == 2
        assert stats["cache_hits"] == 1
        assert stats["registry"]["n_results"] == 1

    def test_truncated_registry_entries_never_take_down_the_serve_loop(
        self, registry
    ):
        """The satellite-bugfix regression: corrupt on-disk state in
        every registry layer is a logged miss; the loop recompiles."""
        kernel = _vadd()
        options = _quick_options()

        async def compile_once(service, client):
            return await client.compile(kernel, options=options)

        first = _run_with_service(registry, compile_once)

        # Truncate the cached result and drop garbage artifacts next
        # to the good one — every corrupt layer at once.
        result_files = list(registry.results_dir.glob("*.json"))
        assert result_files
        for path in result_files:
            path.write_text(path.read_text()[: 20])
        (registry.artifacts_dir / "zz-junk.json").write_text("{nope")

        sink = ListSink()
        fresh = ArtifactRegistry(registry.root)
        with use_tracer(Tracer(sink)):
            second = _run_with_service(fresh, compile_once)
        assert second["ok"] and second["cached"] is False
        assert second["result"] == first["result"]
        corrupt = [e for e in sink.events if e["name"] == "registry.corrupt"]
        assert len(corrupt) >= 2  # the result entry and the junk artifact


class TestServiceTracing:
    def test_requests_and_batches_are_recorded(self, registry):
        kernel = _vadd()
        options = _quick_options()

        async def body(service, client):
            await client.compile(kernel, options=options)
            await client.compile(kernel, options=options)

        sink = ListSink()
        with use_tracer(Tracer(sink)):
            _run_with_service(registry, body)
        requests = [
            e for e in sink.events if e["name"] == "service.request"
        ]
        assert len(requests) == 2
        assert requests[0]["attrs"]["cache_hit"] is False
        assert requests[1]["attrs"]["cache_hit"] is True
        batches = [e for e in sink.events if e["name"] == "service.batch"]
        assert len(batches) == 1
        assert batches[0]["attrs"]["n_kernels"] == 1

    def test_trace_report_grows_a_service_section(self, registry):
        from repro.tools.trace_report import render_report, service_rollup

        kernel = _vadd()
        options = _quick_options()

        async def body(service, client):
            await client.compile(kernel, options=options)
            await client.compile(kernel, options=options)

        sink = ListSink()
        with use_tracer(Tracer(sink)):
            _run_with_service(registry, body)
        events = list(sink.events)
        out = service_rollup(events)
        assert "requests: 2 (1 cache hits, 0 deduped, 1 compiled)" in out
        assert "cache hit rate: 50.0%" in out
        assert "== service ==" in render_report(events)


class _StubServer:
    """A TCP stub misbehaving on purpose, for client retry tests."""

    def __init__(self, behaviors):
        # behaviors: per-connection, "close" | "serve" | "stall"
        self.behaviors = list(behaviors)
        self.connections = 0
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=5)

    def _loop(self):
        while self.behaviors:
            behavior = self.behaviors.pop(0)
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            with conn:
                if behavior == "close":
                    continue
                if behavior == "stall":
                    time.sleep(0.8)
                    continue
                file = conn.makefile("rb")
                line = file.readline()
                if line:
                    conn.sendall(
                        json.dumps(
                            {"ok": True, "op": "ping", "protocol": 1}
                        ).encode() + b"\n"
                    )


class TestClientRetry:
    def test_reconnects_after_server_drops_the_connection(self):
        with _StubServer(["close", "serve"]) as stub:
            client = CompileClient(port=stub.port, retries=2, timeout=5)
            with client:
                response = client.ping()
            assert response["ok"]
            assert stub.connections == 2

    def test_gives_up_after_exhausting_retries(self):
        with _StubServer(["close", "close", "close", "close"]) as stub:
            client = CompileClient(port=stub.port, retries=2, timeout=5)
            with pytest.raises(ConnectionError, match="3 attempts"):
                client.ping()

    def test_times_out_on_a_stalled_server_and_recovers(self):
        # The stub stalls its first connection for 0.8s — longer than
        # one client timeout, shorter than two — so attempt 1 times
        # out and attempt 2 lands after the stall has cleared.
        with _StubServer(["stall", "serve"]) as stub:
            client = CompileClient(port=stub.port, retries=1, timeout=0.6)
            with client:
                assert client.ping()["ok"]
            assert stub.connections == 2


class TestBackgroundServerAndCli:
    def test_sync_client_against_background_server(self, registry):
        kernel = _vadd()
        options = _quick_options()
        with BackgroundServer(
            config=ServiceConfig(port=0, batch_window=0.05),
            registry=registry,
        ) as server:
            with CompileClient(port=server.port) as client:
                cold = client.compile(kernel, options=options)
                warm = client.compile(kernel, options=options)
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert cold["result"] == warm["result"]

    def test_client_cli_quickstart_flow(self, registry, capsys):
        with BackgroundServer(
            config=ServiceConfig(port=0, batch_window=0.05),
            registry=registry,
        ) as server:
            from repro.service.client import main as client_main

            assert client_main(
                ["--port", str(server.port), "--ping"]
            ) == 0
        assert "server up (protocol v1)" in capsys.readouterr().out

    def test_shutdown_op_stops_background_server(self, registry):
        server = BackgroundServer(
            config=ServiceConfig(port=0), registry=registry
        )
        with server:
            with CompileClient(port=server.port) as client:
                response = client.shutdown()
            assert response["ok"]
            server._thread.join(timeout=10)
            assert not server._thread.is_alive()
