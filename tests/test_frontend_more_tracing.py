"""More symbolic-tracing scenarios (realistic kernel idioms)."""

import numpy as np
import pytest

from repro.compiler.frontend import (
    SymArray,
    scalar_outputs,
    trace_kernel,
)


class TestTracingIdioms:
    def test_accumulator_rebinding(self, spec):
        def kern(x):
            acc = 0
            for i in range(4):
                acc = acc + x[i] * x[i]
            return [acc]

        program = trace_kernel("ssq", kern, {"x": 4}, 4)
        interp = spec.interpreter()
        value = interp.evaluate(
            scalar_outputs(program)[0], {"x": [1.0, 2.0, 3.0, 4.0]}
        )
        assert float(value) == 30.0

    def test_python_conditionals_trace_statically(self, spec):
        def kern(x):
            outs = []
            for i in range(4):
                if i % 2 == 0:
                    outs.append(x[i] + 1)
                else:
                    outs.append(x[i] - 1)
            return outs

        program = trace_kernel("alt", kern, {"x": 4}, 4)
        interp = spec.interpreter()
        env = {"x": [10.0, 10.0, 10.0, 10.0]}
        values = [
            float(interp.evaluate(t, env))
            for t in scalar_outputs(program)
        ]
        assert values == [11.0, 9.0, 11.0, 9.0]

    def test_helper_functions_compose(self, spec):
        def dot(xs, ys):
            acc = xs[0] * ys[0]
            for a, b in list(zip(xs, ys))[1:]:
                acc = acc + a * b
            return acc

        def kern(x, y):
            row_x = [x[i] for i in range(3)]
            row_y = [y[i] for i in range(3)]
            return [dot(row_x, row_y)]

        program = trace_kernel("dot3", kern, {"x": 3, "y": 3}, 4)
        interp = spec.interpreter()
        value = interp.evaluate(
            scalar_outputs(program)[0],
            {"x": [1.0, 2.0, 3.0], "y": [4.0, 5.0, 6.0]},
        )
        assert float(value) == 32.0

    def test_numpy_style_constants(self):
        def kern(x):
            return [x[0] * 0.5, x[0] * 2, 3.25]

        program = trace_kernel("consts", kern, {"x": 1}, 4)
        outs = scalar_outputs(program)
        assert len(outs) == 3

    def test_sym_array_iteration_protocol(self):
        arr = SymArray("x", 3)
        collected = [arr[i] for i in range(len(arr))]
        assert len(collected) == 3


class TestEndToEndTracedKernel:
    def test_custom_kernel_through_full_pipeline(
        self, spec, isaria_compiler
    ):
        # A small 1D stencil written by a "user".
        def stencil(signal, weights):
            return [
                signal[i] * weights[0]
                + signal[i + 1] * weights[1]
                + signal[i + 2] * weights[2]
                for i in range(4)
            ]

        program = trace_kernel(
            "stencil3", stencil, {"signal": 6, "weights": 3}, 4
        )
        kernel = isaria_compiler.compile_kernel(program)
        result = kernel.run(
            {
                "signal": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
                "weights": [0.5, 1.0, 0.25],
            }
        )
        expected = [
            1 * 0.5 + 2 * 1 + 3 * 0.25,
            2 * 0.5 + 3 * 1 + 4 * 0.25,
            3 * 0.5 + 4 * 1 + 5 * 0.25,
            4 * 0.5 + 5 * 1 + 6 * 0.25,
        ]
        assert np.allclose(result.array("out")[:4], expected)
