"""Qualitative markers for the Diospyros baseline on real kernels."""

import pytest

from repro.compiler.diospyros import DiospyrosCompiler
from repro.kernels import matmul_kernel
from repro.lang.term import subterms


@pytest.fixture(scope="module")
def dios(spec):
    return DiospyrosCompiler(spec)


class TestVectorizationMarkers:
    def test_matmul_uses_mac(self, dios):
        compiled, _ = dios.compile(matmul_kernel(2, 2, 2).program.term)
        ops = {s.op for s in subterms(compiled)}
        assert "VecMAC" in ops or "VecMul" in ops

    def test_compile_is_deterministic(self, dios):
        term = matmul_kernel(2, 2, 2).program.term
        a, _ = dios.compile(term)
        b, _ = dios.compile(term)
        assert a == b

    def test_report_costs_consistent(self, dios):
        term = matmul_kernel(2, 2, 2).program.term
        compiled, report = dios.compile(term)
        assert report.final_cost == pytest.approx(
            dios.cost_model.term_cost(compiled), rel=1e-9
        )

    def test_compiled_term_equivalent(self, dios, spec):
        import random

        from repro.interp.env import term_inputs
        from repro.interp.value import values_equal

        term = matmul_kernel(2, 2, 2).program.term
        compiled, _ = dios.compile(term)
        interp = spec.interpreter()
        rng = random.Random(3)
        for _ in range(5):
            env = {
                atom: rng.uniform(-2, 2) for atom in term_inputs(term)
            }
            assert values_equal(
                interp.evaluate(term, env),
                interp.evaluate(compiled, env),
            )
