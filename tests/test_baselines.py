"""Unit tests for the scalar, SLP, and Nature baselines."""

import numpy as np
import pytest

from repro.baselines import (
    compile_scalar,
    compile_slp,
    has_nature_kernel,
    nature_program,
)
from repro.compiler.frontend import trace_kernel
from repro.kernels import (
    conv2d_kernel,
    matmul_kernel,
    padded_memory,
    qr_kernel,
    quaternion_product_kernel,
    run_reference,
)
from repro.machine import Machine


@pytest.fixture(scope="module")
def machine(spec):
    return Machine(spec)


def check_correct(machine, instance, program, extra=None, seed=3):
    inputs = instance.make_inputs(seed)
    memory = padded_memory(instance, inputs)
    for name, size in (extra or {}).items():
        memory[name] = [0.0] * size
    result = machine.run(program, memory)
    got = result.array(instance.program.output)[: instance.output_len]
    want = run_reference(instance, inputs)
    assert np.allclose(got, want, rtol=1e-4, atol=1e-5), instance.key
    return result


class TestScalarBaseline:
    @pytest.mark.parametrize(
        "instance",
        [
            matmul_kernel(3, 3, 3),
            conv2d_kernel(3, 3, 2, 2),
            quaternion_product_kernel(),
            qr_kernel(3),
        ],
        ids=lambda k: k.key,
    )
    def test_correct(self, spec, machine, instance):
        check_correct(machine, instance, compile_scalar(instance.program,
                                                        spec))

    def test_no_vector_instructions(self, spec):
        instance = matmul_kernel(4, 4, 4)
        program = compile_scalar(instance.program, spec)
        assert program.count("v.") == 0

    def test_cse_shares_loads(self, spec):
        def kern(x):
            return [x[0] * x[0], x[0] + x[0]]

        program = trace_kernel("sq", kern, {"x": 4}, 4)
        machine_prog = compile_scalar(program, spec)
        assert machine_prog.count("s.load") == 1


class TestSlpBaseline:
    @pytest.mark.parametrize(
        "instance",
        [
            matmul_kernel(4, 4, 4),
            matmul_kernel(3, 3, 3),
            conv2d_kernel(3, 3, 2, 2),
            quaternion_product_kernel(),
            qr_kernel(3),
        ],
        ids=lambda k: k.key,
    )
    def test_correct(self, spec, machine, instance):
        check_correct(machine, instance, compile_slp(instance.program,
                                                     spec))

    def test_vectorizes_aligned_matmul(self, spec, machine):
        instance = matmul_kernel(4, 4, 4)
        slp = compile_slp(instance.program, spec)
        scalar = compile_scalar(instance.program, spec)
        assert slp.count("v.op") > 0
        s = check_correct(machine, instance, scalar)
        v = check_correct(machine, instance, slp)
        assert v.cycles < s.cycles

    def test_qprod_uses_altop_macs(self, spec):
        instance = quaternion_product_kernel()
        program = compile_slp(instance.program, spec)
        assert any(
            i.opcode == "v.op" and i.op == "VecMAC"
            for i in program.instrs
        )

    def test_irregular_conv_falls_back_to_scalar(self, spec):
        instance = conv2d_kernel(3, 3, 2, 2)
        program = compile_slp(instance.program, spec)
        # Boundary lanes are non-isomorphic: greedy SLP gives up on
        # most groups (the paper's Clang-on-irregular-kernels shape).
        assert program.count("s.op") > 0


class TestNatureBaseline:
    def test_coverage(self):
        assert has_nature_kernel(matmul_kernel(3, 3, 3))
        assert has_nature_kernel(conv2d_kernel(3, 3, 2, 2))
        assert has_nature_kernel(quaternion_product_kernel())
        assert not has_nature_kernel(qr_kernel(3))

    def test_qr_raises(self, spec):
        with pytest.raises(ValueError):
            nature_program(qr_kernel(3), spec)

    @pytest.mark.parametrize(
        "instance",
        [
            matmul_kernel(2, 2, 2),
            matmul_kernel(3, 3, 3),
            matmul_kernel(4, 4, 4),
            matmul_kernel(2, 3, 3),
            conv2d_kernel(3, 3, 2, 2),
            conv2d_kernel(3, 3, 3, 3),
            conv2d_kernel(4, 4, 2, 2),
            quaternion_product_kernel(),
        ],
        ids=lambda k: k.key,
    )
    def test_correct(self, spec, machine, instance):
        program, extra = nature_program(instance, spec)
        check_correct(machine, instance, program, extra)

    def test_uses_loops(self, spec):
        program, _ = nature_program(matmul_kernel(4, 4, 4), spec)
        assert program.count("loop.begin") > 0
        assert program.count("loop.begin") == program.count("loop.end")

    def test_aligned_matmul_beats_scalar(self, spec, machine):
        instance = matmul_kernel(4, 4, 4)
        nat, extra = nature_program(instance, spec)
        n = check_correct(machine, instance, nat, extra)
        s = check_correct(
            machine, instance, compile_scalar(instance.program, spec)
        )
        assert n.cycles < s.cycles

    def test_odd_size_pays_library_tax(self, spec, machine):
        # Tail columns + padding copies: the library loses on small
        # irregular sizes (why the paper's Nature omits some).
        instance = matmul_kernel(3, 3, 3)
        nat, extra = nature_program(instance, spec)
        aligned = matmul_kernel(4, 4, 4)
        nat4, extra4 = nature_program(aligned, spec)
        n3 = check_correct(machine, instance, nat, extra)
        n4 = check_correct(machine, aligned, nat4, extra4)
        # 4x4x4 does ~2.4x the multiplies yet runs close to 3x3x3.
        assert n4.cycles < 2 * n3.cycles
