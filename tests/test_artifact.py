"""CompilerArtifact: round-trips, semantics fingerprints, cache misses."""

import dataclasses
import json

import pytest

from repro.compiler.compile import CompileOptions
from repro.compiler.diospyros import diospyros_rules
from repro.core.artifact import (
    ArtifactError,
    CompilerArtifact,
    artifact_cache_path,
    artifact_fingerprint,
    load_cached_artifact,
    spec_fingerprint,
    spec_semantics_hash,
    store_artifact,
)
from repro.core.framework import GeneratedCompiler
from repro.egraph.runner import RunnerLimits
from repro.isa import customized_spec, fusion_g3_spec
from repro.isa.spec import IsaSpec
from repro.phases.assign import PhaseParams, assign_phases, default_params
from repro.phases.cost import CostModel
from repro.ruler import SynthesisConfig


def fast_compile_options() -> CompileOptions:
    """Reduced saturation limits (same shape as the conftest helper)."""
    return CompileOptions(
        max_rounds=4,
        expansion_limits=RunnerLimits(
            max_iterations=4, max_nodes=12_000, time_limit=6.0
        ),
        compilation_limits=RunnerLimits(
            max_iterations=10, max_nodes=20_000, time_limit=8.0
        ),
        optimization_limits=RunnerLimits(
            max_iterations=5, max_nodes=12_000, time_limit=5.0
        ),
    )


def _handmade_compiler(spec, options=None):
    """A compiler with a real phased rule set but no live synthesis."""
    cost_model = CostModel(spec)
    ruleset = assign_phases(
        cost_model, diospyros_rules(spec), default_params(spec)
    )
    return GeneratedCompiler(
        spec=spec,
        cost_model=cost_model,
        ruleset=ruleset,
        options=options or fast_compile_options(),
    )


def _mutate_lane_fn(spec: IsaSpec, name: str) -> IsaSpec:
    """The same spec with one instruction's *behaviour* changed.

    Name, arity, kind, and cost stay identical — only the lane
    function differs, which the legacy fingerprint could not see.
    """
    instructions = []
    for instr in spec.instructions:
        if instr.name == name:
            old_fn = instr.lane_fn

            def twisted(*args, _fn=old_fn):
                return _fn(*args) + 1.0

            instr = dataclasses.replace(instr, lane_fn=twisted)
        instructions.append(instr)
    return dataclasses.replace(spec, instructions=tuple(instructions))


BUNDLED_SPECS = {
    "fusion_g3": fusion_g3_spec,
    "fusion_g3_mulsub": lambda: customized_spec(
        fusion_g3_spec(), mulsub=True
    ),
    "fusion_g3_sqrtsgn": lambda: customized_spec(
        fusion_g3_spec(), sqrtsgn=True
    ),
}


class TestSemanticsFingerprint:
    def test_stable_across_calls(self, spec):
        assert spec_semantics_hash(spec) == spec_semantics_hash(spec)

    def test_lane_function_edit_changes_hash(self, spec):
        mutated = _mutate_lane_fn(spec, "+")
        assert spec_semantics_hash(mutated) != spec_semantics_hash(spec)

    def test_lane_function_edit_changes_spec_fingerprint(self, spec):
        # The satellite regression: the legacy fingerprint keyed on
        # name/arity/kind/cost only, so a semantics edit hit stale
        # caches.
        config = SynthesisConfig(max_term_size=3)
        mutated = _mutate_lane_fn(spec, "*")
        assert spec_fingerprint(mutated, config) != spec_fingerprint(
            spec, config
        )

    def test_lane_function_edit_misses_artifact_cache(self, spec, tmp_path):
        config = SynthesisConfig(max_term_size=3)
        compiler = _handmade_compiler(spec)
        store_artifact(
            compiler.to_artifact(config=config), spec, config,
            cache_dir=tmp_path,
        )
        params = compiler.ruleset.params
        assert (
            load_cached_artifact(spec, config, params, cache_dir=tmp_path)
            is not None
        )
        mutated = _mutate_lane_fn(spec, "+")
        assert (
            load_cached_artifact(
                mutated, config, params, cache_dir=tmp_path
            )
            is None
        )

    def test_phase_params_are_part_of_the_key(self, spec):
        config = SynthesisConfig(max_term_size=3)
        a = artifact_fingerprint(spec, config, PhaseParams(25.0, 12.0))
        b = artifact_fingerprint(spec, config, PhaseParams(30.0, 12.0))
        assert a != b


class TestCorruptCacheIsAMiss:
    def test_corrupt_json_is_a_miss_not_a_crash(self, spec, tmp_path):
        config = SynthesisConfig(max_term_size=3)
        params = default_params(spec)
        path = artifact_cache_path(spec, config, params,
                                   cache_dir=tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ this is not json")
        assert (
            load_cached_artifact(spec, config, params, cache_dir=tmp_path)
            is None
        )

    def test_truncated_artifact_is_a_miss(self, spec, tmp_path):
        config = SynthesisConfig(max_term_size=3)
        compiler = _handmade_compiler(spec)
        path = store_artifact(
            compiler.to_artifact(config=config), spec, config,
            cache_dir=tmp_path,
        )
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert (
            load_cached_artifact(
                spec, config, compiler.ruleset.params, cache_dir=tmp_path
            )
            is None
        )

    def test_wrong_kind_rejected_loudly_on_direct_load(self, tmp_path):
        path = tmp_path / "not-an-artifact.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ArtifactError):
            CompilerArtifact.load(path)

    def test_corrupt_legacy_rules_cache_is_a_miss(self, spec, tmp_path):
        from repro.core.cache import load_cached_rules, spec_fingerprint

        config = SynthesisConfig(max_term_size=3)
        bad = tmp_path / f"rules-{spec_fingerprint(spec, config)}.txt"
        bad.write_text("name-without-body\n")
        assert load_cached_rules(spec, config, cache_dir=tmp_path) is None

    def test_framework_rebuilds_over_corrupt_cache(
        self, spec, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RULE_CACHE", str(tmp_path))
        from repro.core import IsariaFramework

        config = SynthesisConfig(max_term_size=3)
        framework = IsariaFramework(spec, synthesis_config=config)
        path = artifact_cache_path(spec, config, framework.phase_params,
                                   cache_dir=tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"kind": "repro-compiler-artifact", trunca')
        compiler = framework.generate_compiler(cache=True)
        assert compiler.synthesis is not None  # miss → rebuilt
        # ... and the bad entry was overwritten with a loadable one.
        assert CompilerArtifact.load(path).ruleset.counts()


class TestRoundTrip:
    @pytest.mark.parametrize("isa", sorted(BUNDLED_SPECS))
    def test_round_trip_preserves_offline_product(self, isa):
        spec = BUNDLED_SPECS[isa]()
        compiler = _handmade_compiler(spec)
        artifact = compiler.to_artifact(
            config=SynthesisConfig(max_term_size=3)
        )
        restored_artifact = CompilerArtifact.from_json(artifact.to_json())
        restored = GeneratedCompiler.from_artifact(restored_artifact, spec)

        # Identical phase membership and rule set, phase by phase.
        for phase in ("expansion", "compilation", "optimization"):
            assert [
                (r.name, str(r)) for r in getattr(restored.ruleset, phase)
            ] == [
                (r.name, str(r)) for r in getattr(compiler.ruleset, phase)
            ]
        assert restored.ruleset.params == compiler.ruleset.params
        # Identical cost and compile parameters.
        assert restored_artifact.cost_params["leaf_cost"] == spec.leaf_cost
        assert restored.options == compiler.options

    @pytest.mark.parametrize("isa", sorted(BUNDLED_SPECS))
    def test_round_trip_compiles_identically(self, isa):
        from repro.compiler.frontend import trace_kernel

        spec = BUNDLED_SPECS[isa]()
        options = fast_compile_options()
        compiler = _handmade_compiler(spec, options=options)
        restored = GeneratedCompiler.from_artifact(
            CompilerArtifact.from_json(compiler.to_artifact().to_json()),
            spec,
        )
        program = trace_kernel(
            "vadd",
            lambda x, y: [x[i] + y[i] for i in range(4)],
            {"x": 4, "y": 4},
            4,
        )
        first, first_report = compiler.compile_term(program.term, options)
        second, second_report = restored.compile_term(program.term, options)
        assert str(first) == str(second)
        assert first_report.final_cost == second_report.final_cost

    def test_options_round_trip_including_limits(self, spec):
        options = CompileOptions(
            phased=False,
            max_rounds=3,
            expansion_limits=RunnerLimits(max_iterations=7, max_nodes=123),
        )
        compiler = _handmade_compiler(spec, options=options)
        artifact = CompilerArtifact.from_json(
            compiler.to_artifact().to_json()
        )
        assert artifact.options == options
        assert artifact.options.expansion_limits.max_nodes == 123

    def test_synthesis_provenance_recorded(self, spec, synthesis_size3):
        cost_model = CostModel(spec)
        compiler = GeneratedCompiler(
            spec=spec,
            cost_model=cost_model,
            ruleset=assign_phases(
                cost_model, synthesis_size3.rules, default_params(spec)
            ),
            synthesis=synthesis_size3,
        )
        artifact = compiler.to_artifact(
            config=SynthesisConfig(max_term_size=3)
        )
        prov = artifact.provenance
        assert prov["source"] == "synthesized"
        assert prov["n_rules"] == len(synthesis_size3.rules)
        assert prov["n_candidates"] == synthesis_size3.n_candidates
        assert "== timeline ==" not in artifact.summary()
        assert "synthesized" in artifact.summary()


class TestLoadedCompilerSkipsOfflineStage:
    def test_from_artifact_never_synthesizes_or_assigns(
        self, spec, tmp_path, monkeypatch
    ):
        """The acceptance criterion, via call counting."""
        config = SynthesisConfig(max_term_size=3)
        compiler = _handmade_compiler(spec)
        store_artifact(
            compiler.to_artifact(config=config), spec, config,
            cache_dir=tmp_path,
        )

        calls = {"synthesize": 0, "assign": 0}
        import repro.core.framework as framework_mod

        def counting_synthesize(*args, **kwargs):
            calls["synthesize"] += 1
            raise AssertionError("synthesize_rules ran on a cache hit")

        def counting_assign(*args, **kwargs):
            calls["assign"] += 1
            raise AssertionError("assign_phases ran on a cache hit")

        monkeypatch.setattr(
            framework_mod, "synthesize_rules", counting_synthesize
        )
        monkeypatch.setattr(framework_mod, "assign_phases", counting_assign)

        artifact = load_cached_artifact(
            spec, config, compiler.ruleset.params, cache_dir=tmp_path
        )
        loaded = GeneratedCompiler.from_artifact(artifact, spec)
        assert calls == {"synthesize": 0, "assign": 0}

        monkeypatch.setenv("REPRO_RULE_CACHE", str(tmp_path))
        from repro.core import IsariaFramework

        framework = IsariaFramework(
            spec,
            synthesis_config=config,
            phase_params=compiler.ruleset.params,
        )
        via_framework = framework.generate_compiler(cache=True)
        assert calls == {"synthesize": 0, "assign": 0}
        assert len(via_framework.ruleset) == len(loaded.ruleset)

        # The loaded compiler actually works.
        from repro.compiler.frontend import trace_kernel

        program = trace_kernel(
            "sq", lambda x: [x[i] * x[i] for i in range(4)], {"x": 4}, 4
        )
        kernel = loaded.compile_kernel(program,
                                       options=fast_compile_options())
        assert kernel.machine_program.instrs

    def test_spec_mismatch_refused(self, spec):
        compiler = _handmade_compiler(spec)
        artifact = compiler.to_artifact()
        mutated = _mutate_lane_fn(spec, "+")
        with pytest.raises(ArtifactError):
            GeneratedCompiler.from_artifact(artifact, mutated)
        # check=False overrides for deliberate reuse.
        forced = GeneratedCompiler.from_artifact(
            artifact, mutated, check=False
        )
        assert len(forced.ruleset) == len(compiler.ruleset)


class TestPruningProvenance:
    def test_pruning_round_trips(self, spec):
        compiler = _handmade_compiler(spec)
        artifact = dataclasses.replace(
            compiler.to_artifact(),
            pruning={
                "single_lane": {
                    "n_in": 184, "n_kept": 97, "n_dominated": 87,
                    "n_rescued": 17,
                    "cost_model_digest": "2a68e38910dddbc4",
                },
            },
        )
        restored = CompilerArtifact.from_json(artifact.to_json())
        assert restored.pruning == artifact.pruning
        assert "pruning:" in restored.summary()
        assert "kept 97/184" in restored.summary()

    def test_absent_pruning_tolerated(self, spec):
        # Artifacts written before the pruning stage existed (or on
        # the legacy path) carry no pruning key; loading must not
        # care, and the fingerprint must not move.
        compiler = _handmade_compiler(spec)
        artifact = compiler.to_artifact()
        doc = json.loads(artifact.to_json())
        doc.pop("pruning", None)
        restored = CompilerArtifact.from_json(json.dumps(doc))
        assert restored.pruning is None
        assert "pruning:" not in restored.summary()

    def test_cost_prune_default_keeps_fingerprints(self, spec):
        # The pruning stage defaults on without invalidating every
        # pre-existing artifact: the config only joins the cache key
        # when it deviates from the default.
        default = spec_fingerprint(spec, SynthesisConfig())
        explicit = spec_fingerprint(
            spec, SynthesisConfig(cost_prune=True)
        )
        legacy = spec_fingerprint(
            spec, SynthesisConfig(cost_prune=False)
        )
        assert default == explicit
        assert legacy != default
