"""Mid-size Isaria compilations with the fast test compiler.

These exercise multi-chunk kernels through the whole pipeline
(compile, validate, lower, schedule, simulate) at sizes the size-4
session compiler handles quickly.
"""

import numpy as np
import pytest

from repro.kernels import (
    conv2d_kernel,
    matmul_kernel,
    padded_memory,
    run_reference,
)
from repro.machine import Machine, schedule_program


@pytest.mark.parametrize(
    "instance",
    [
        matmul_kernel(2, 4, 4),
        matmul_kernel(4, 2, 4),
        conv2d_kernel(2, 2, 2, 2),
        conv2d_kernel(4, 4, 1, 2),
    ],
    ids=lambda k: k.key,
)
def test_midsize_kernels_correct(spec, isaria_compiler, instance):
    kernel = isaria_compiler.compile_kernel(instance)
    machine = Machine(spec)
    program = schedule_program(kernel.machine_program, machine)
    inputs = instance.make_inputs(6)
    result = machine.run(program, padded_memory(instance, inputs))
    got = result.array("out")[: instance.output_len]
    want = run_reference(instance, inputs)
    assert np.allclose(got, want, rtol=1e-4, atol=1e-5)


def test_uniform_matmul_vectorizes_with_fast_compiler(
    spec, isaria_compiler
):
    instance = matmul_kernel(2, 4, 4)
    kernel = isaria_compiler.compile_kernel(instance)
    from repro.lang.term import subterms

    vec_ops = {
        s.op
        for s in subterms(kernel.compiled_term)
        if s.op.startswith("Vec") and s.op != "Vec"
    }
    assert vec_ops, "no vector instructions in compiled matmul"
    assert kernel.report.final_cost < kernel.report.initial_cost / 5
