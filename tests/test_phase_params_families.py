"""Default α/β thresholds separate phases on every bundled family.

:func:`repro.phases.assign.default_params` derives α/β from the cost
model rather than hard-coding fusion-g3 numbers, so the same recipe
must keep producing a *non-degenerate* three-phase split when the
shipped algebra is re-generalized onto other families and widths:
every phase populated, and compilation reserved for the scalar→vector
transitions that α is supposed to isolate.
"""

from __future__ import annotations

import pytest

from repro.core.pregen import family_compiler
from repro.isa.families import isa_family
from repro.phases.assign import default_params

_CELLS = [
    ("masked", 4),
    ("masked", 8),
    ("avx-like", 4),
    ("avx-like", 8),
]
_BUILT: dict = {}


def _compiler(family: str, width: int):
    key = (family, width)
    if key not in _BUILT:
        _BUILT[key] = family_compiler(isa_family(family).spec(width))
    return _BUILT[key]


@pytest.mark.parametrize(
    "family,width", _CELLS, ids=lambda v: str(v)
)
def test_phase_split_is_non_degenerate(family, width):
    compiler = _compiler(family, width)
    counts = compiler.ruleset.counts()
    for phase, count in counts.items():
        assert count > 0, (
            f"{family}-w{width}: degenerate split, no {phase} rules "
            f"({counts})"
        )


@pytest.mark.parametrize(
    "family,width", _CELLS, ids=lambda v: str(v)
)
def test_alpha_isolates_vector_transitions(family, width):
    # α's job: compilation is where the scalar→vector transitions
    # live.  A handful of deeply lopsided scalar identities (erasing
    # three ops, e.g. ``(/ (neg ?x) (neg 1)) => ?x``) legitimately
    # clear the bar too, so assert the overwhelming share rather than
    # exclusivity.
    compiler = _compiler(family, width)
    compilation = compiler.ruleset.compilation
    vector = [
        rule for rule in compilation
        if "Vec" in f"{rule.lhs} {rule.rhs}"
    ]
    assert len(vector) >= 0.9 * len(compilation), (
        f"{family}-w{width}: only {len(vector)}/{len(compilation)} "
        "compilation rules mention a vector op"
    )


@pytest.mark.parametrize(
    "family,width", _CELLS, ids=lambda v: str(v)
)
def test_default_params_track_the_spec(family, width):
    spec = isa_family(family).spec(width)
    params = default_params(spec)
    scalar_costs = [i.base_cost for i in spec.scalar_instructions()]
    assert params.alpha == 2.0 * max(scalar_costs) + 1.0
    assert params.beta == min(scalar_costs) + 2.0 * spec.leaf_cost
    # β must sit strictly below α for the two-step assignment to have
    # three reachable outcomes.
    assert params.beta < params.alpha
