"""ScheduleSpec / TunedScheduler: serialization, runner and pipeline
consumption, the ``REPRO_SCHEDULE`` override, and artifact persistence.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.compiler.compile import CompileOptions, compile_term
from repro.core.artifact import CompilerArtifact
from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import parse_rewrite
from repro.egraph.runner import RunnerLimits, run_saturation
from repro.egraph.scheduling import (
    PhasePolicy,
    RulePolicy,
    ScheduleError,
    ScheduleSpec,
    TunedScheduler,
    schedule_from_env,
)
from repro.lang.parser import parse


def fast_compile_options() -> CompileOptions:
    """Reduced saturation limits so these tests stay quick."""
    return CompileOptions(
        max_rounds=4,
        expansion_limits=RunnerLimits(
            max_iterations=4, max_nodes=12_000, time_limit=6.0
        ),
        compilation_limits=RunnerLimits(
            max_iterations=10, max_nodes=20_000, time_limit=8.0
        ),
        optimization_limits=RunnerLimits(
            max_iterations=5, max_nodes=12_000, time_limit=5.0
        ),
    )


def _spec():
    return (
        ScheduleSpec()
        .with_rule("hot", RulePolicy(match_limit=16, ban_length=4))
        .with_rule("dead", RulePolicy(disabled=True))
        .with_phase("compilation", PhasePolicy(max_iterations=3))
    )


class TestSpecValue:
    def test_round_trips_through_json(self):
        spec = _spec()
        restored = ScheduleSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.disabled_rules() == ["dead"]
        assert restored.rule_policy("hot").match_limit == 16

    def test_default_policies_are_elided(self):
        spec = ScheduleSpec().with_rule("noop", RulePolicy())
        doc = spec.to_dict()
        assert doc["rules"] == {}
        assert ScheduleSpec.from_json(spec.to_json()).is_default()

    def test_unknown_phase_rejected(self):
        with pytest.raises(ScheduleError, match="unknown phase"):
            ScheduleSpec().with_phase("warmup", PhasePolicy())
        with pytest.raises(ScheduleError, match="unknown phase"):
            ScheduleSpec.from_dict(
                {"phases": {"warmup": {"max_iterations": 1}}}
            )

    def test_unknown_policy_key_rejected(self):
        with pytest.raises(ScheduleError, match="unknown policy keys"):
            ScheduleSpec.from_dict({"rules": {"r": {"match_cap": 3}}})

    def test_future_version_rejected(self):
        with pytest.raises(ScheduleError, match="unsupported schedule"):
            ScheduleSpec.from_dict({"version": 99})

    def test_limits_for_overrides_only_set_fields(self):
        base = RunnerLimits(max_iterations=30, match_limit=80)
        limits = _spec().limits_for("compilation", base)
        assert limits.max_iterations == 3
        assert limits.match_limit == 80  # inherited
        assert _spec().limits_for("expansion", base) == base

    def test_summary_names_the_levers(self):
        text = _spec().summary()
        assert "disables dead" in text
        assert "tunes hot" in text
        assert "caps phases compilation" in text


class TestTunedScheduler:
    def test_per_rule_budgets_override_defaults(self):
        hot = parse_rewrite("hot", "(+ ?a ?b) => (+ ?b ?a)")
        other = parse_rewrite("other", "(- ?a ?b) => (- ?b ?a)")
        sched = TunedScheduler(_spec(), match_limit=1000, ban_length=5)
        assert sched.threshold(hot) == 16
        assert sched.threshold(other) == 1000
        # Doubling starts from the rule's own base...
        sched.record(hot, iteration=0, n_matches=17)
        assert sched.threshold(hot) == 32
        # ...and the ban uses the rule's own length (iters 1-4).
        assert not sched.can_apply(hot, 4)
        assert sched.can_apply(hot, 5)

    def test_disabled_rule_is_filtered_not_banned(self):
        rules = [
            parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)"),
            parse_rewrite("dead", "(* ?a ?b) => (* ?b ?a)"),
        ]
        spec = ScheduleSpec().with_rule("dead", RulePolicy(disabled=True))
        g = EGraph()
        g.add_term(parse("(+ (Get a 0) (* (Get b 0) (Get c 0)))"))
        g.rebuild()
        limits = RunnerLimits(max_iterations=10)
        report = run_saturation(
            g, rules, limits,
            scheduler=spec.scheduler_for("unphased", limits),
        )
        # The run still *saturates* — a disabled rule must not count
        # as skipped work the way a banned rule does.
        assert report.saturated
        assert "dead" not in report.perf.rule_match_time
        assert "comm" in report.perf.rule_match_time


class TestPipelineConsumption:
    def test_phase_cap_reaches_the_runner(self, isaria_compiler):
        term = parse("(+ (Get a 0) (Get b 0))")
        options = fast_compile_options()
        spec = ScheduleSpec().with_phase(
            "compilation", PhasePolicy(max_iterations=1)
        )
        _, report = compile_term(
            term, isaria_compiler.ruleset, isaria_compiler.cost_model,
            options, schedule=spec,
        )
        comp_iters = [
            r.compilation.n_iterations
            for r in report.rounds
            if r.compilation is not None
        ]
        assert comp_iters and all(n <= 1 for n in comp_iters)

    def test_default_schedule_changes_nothing(self, isaria_compiler):
        term = parse("(+ (* (Get a 0) (Get b 0)) (Get c 0))")
        options = fast_compile_options()
        plain, plain_report = compile_term(
            term, isaria_compiler.ruleset, isaria_compiler.cost_model,
            options,
        )
        scheduled, sched_report = compile_term(
            term, isaria_compiler.ruleset, isaria_compiler.cost_model,
            options, schedule=ScheduleSpec(),
        )
        assert scheduled == plain
        assert sched_report.final_cost == plain_report.final_cost


class TestEnvOverride:
    def test_unset_means_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHEDULE", raising=False)
        assert schedule_from_env() is None

    def test_off_forces_default_schedule(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULE", "off")
        spec = schedule_from_env()
        assert spec is not None and spec.is_default()

    def test_loads_spec_file(self, monkeypatch, tmp_path):
        path = _spec().save(tmp_path / "sched.json")
        monkeypatch.setenv("REPRO_SCHEDULE", str(path))
        assert schedule_from_env() == _spec()

    def test_unreadable_file_raises(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCHEDULE", str(tmp_path / "nope.json"))
        with pytest.raises(ScheduleError):
            schedule_from_env()

    def test_env_wins_over_compile_schedule(
        self, monkeypatch, tmp_path, isaria_compiler
    ):
        # Disable the compile's hottest rule via REPRO_SCHEDULE: its
        # counters must vanish.  Then flip precedence: env "off" while
        # the *context* disables it — the rule must come back.
        term = parse("(+ (Get a 0) (Get b 0))")
        options = fast_compile_options()

        def perf_rules(schedule=None):
            _, report = compile_term(
                term, isaria_compiler.ruleset,
                isaria_compiler.cost_model, options, schedule=schedule,
            )
            return report.saturation_perf().rule_match_time

        monkeypatch.delenv("REPRO_SCHEDULE", raising=False)
        baseline = perf_rules()
        hot = max(baseline, key=baseline.get)
        without_hot = ScheduleSpec().with_rule(
            hot, RulePolicy(disabled=True)
        )

        path = without_hot.save(tmp_path / "sched.json")
        monkeypatch.setenv("REPRO_SCHEDULE", str(path))
        assert hot not in perf_rules()

        monkeypatch.setenv("REPRO_SCHEDULE", "off")
        assert hot in perf_rules(schedule=without_hot)


class TestArtifactPersistence:
    def test_schedule_round_trips(self, isaria_compiler):
        compiler = dataclasses.replace(isaria_compiler, schedule=_spec())
        artifact = compiler.to_artifact()
        restored = CompilerArtifact.from_json(artifact.to_json())
        assert restored.schedule == _spec()
        assert "schedule" in restored.summary()

    def test_from_artifact_restores_schedule(self, isaria_compiler, spec):
        compiler = dataclasses.replace(isaria_compiler, schedule=_spec())
        restored = type(isaria_compiler).from_artifact(
            compiler.to_artifact(), spec
        )
        assert restored.schedule == _spec()

    def test_v2_artifact_without_schedule_still_loads(
        self, isaria_compiler
    ):
        doc = json.loads(isaria_compiler.to_artifact().to_json())
        doc.pop("schedule")
        doc["version"] = 2
        restored = CompilerArtifact.from_json(json.dumps(doc))
        assert restored.schedule is None
        assert "default" in restored.summary()

    def test_semantics_hash_unchanged_by_format_bump(
        self, isaria_compiler, spec
    ):
        # A v2-era artifact's spec_hash must still match today's probe
        # of the same ISA, or every pre-existing artifact would be
        # rejected by from_artifact.
        from repro.core.artifact import spec_semantics_hash

        artifact = isaria_compiler.to_artifact()
        assert artifact.spec_hash == spec_semantics_hash(spec)
        type(isaria_compiler).from_artifact(artifact, spec)  # no raise
