"""Property-based chunk-alignment tests."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.compiler.normalize import align_chunk_lanes
from repro.interp.env import term_inputs
from repro.isa import fusion_g3_spec
from repro.lang import builders as B

_SPEC = fusion_g3_spec()
_INTERP = _SPEC.interpreter()


def additive_lanes():
    products = st.tuples(
        st.sampled_from(["x", "y"]), st.integers(0, 3),
        st.sampled_from(["x", "y"]), st.integers(0, 3),
    ).map(lambda p: B.mul(B.get(p[0], p[1]), B.get(p[2], p[3])))

    @st.composite
    def lane(draw):
        n_pos = draw(st.integers(0, 3))
        n_neg = draw(st.integers(0, 3 - min(n_pos, 2)))
        terms_pos = [draw(products) for _ in range(n_pos)]
        terms_neg = [draw(products) for _ in range(n_neg)]
        acc = None
        for t in terms_pos:
            acc = t if acc is None else B.add(acc, t)
        for t in terms_neg:
            acc = B.neg(t) if acc is None else B.sub(acc, t)
        return acc if acc is not None else B.const(0)

    return lane()


def lane_shape(term):
    if not term.args:
        return "leaf"
    return (term.op,) + tuple(lane_shape(a) for a in term.args)


@given(st.lists(additive_lanes(), min_size=4, max_size=4),
       st.integers(0, 3))
@settings(max_examples=80, deadline=None)
def test_alignment_isomorphic_and_semantics_preserving(lanes, seed):
    import random

    aligned = align_chunk_lanes(lanes)
    assert len(aligned) == 4
    shapes = {lane_shape(lane) for lane in aligned}
    assert len(shapes) == 1

    rng = random.Random(seed)
    env = {
        "x": [rng.uniform(-3, 3) for _ in range(4)],
        "y": [rng.uniform(-3, 3) for _ in range(4)],
    }
    for before, after in zip(lanes, aligned):
        needed = set(term_inputs(before)) | set(term_inputs(after))
        assert needed <= {"x", "y"} | needed  # sanity
        lhs = float(_INTERP.evaluate(before, env))
        rhs = float(_INTERP.evaluate(after, env))
        assert abs(lhs - rhs) < 1e-9
