"""Exhaustive machine-op semantics against direct computation."""

import math
import random

import pytest

from repro.machine import Machine, ProgramBuilder


@pytest.fixture(scope="module")
def machine(spec):
    return Machine(spec)


def run_scalar_op(machine, op, args):
    b = ProgramBuilder()
    regs = [b.s_load("in", i) for i in range(len(args))]
    b.s_store("out", 0, b.s_op(op, *regs))
    b.halt()
    result = machine.run(
        b.build(),
        {"in": list(args) + [0.0] * (4 - len(args)), "out": [0.0]},
    )
    return result.array("out")[0]


class TestScalarOpGrid:
    @pytest.mark.parametrize("a", [-2.5, -1.0, 0.0, 0.5, 3.0])
    @pytest.mark.parametrize("b", [-2.0, 0.0, 1.5])
    def test_binary_ops(self, machine, a, b):
        assert run_scalar_op(machine, "+", (a, b)) == a + b
        assert run_scalar_op(machine, "-", (a, b)) == a - b
        assert run_scalar_op(machine, "*", (a, b)) == a * b
        expected_div = 0.0 if b == 0 else a / b
        assert run_scalar_op(machine, "/", (a, b)) == pytest.approx(
            expected_div
        )

    @pytest.mark.parametrize("a", [-4.0, -0.1, 0.0, 0.25, 9.0])
    def test_unary_ops(self, machine, a):
        assert run_scalar_op(machine, "neg", (a,)) == -a
        assert run_scalar_op(machine, "sgn", (a,)) == (
            (a > 0) - (a < 0)
        )
        expected_sqrt = math.sqrt(a) if a >= 0 else 0.0
        assert run_scalar_op(machine, "sqrt", (a,)) == pytest.approx(
            expected_sqrt
        )

    def test_mac_grid(self, machine):
        rng = random.Random(0)
        for _ in range(10):
            c, a, b = (rng.uniform(-3, 3) for _ in range(3))
            assert run_scalar_op(
                machine, "mac", (c, a, b)
            ) == pytest.approx(c + a * b)


class TestVectorOpGrid:
    def test_all_vector_ops_lanewise(self, machine, spec):
        rng = random.Random(1)
        xs = [rng.uniform(0.1, 4.0) for _ in range(4)]
        ys = [rng.uniform(0.1, 4.0) for _ in range(4)]
        zs = [rng.uniform(0.1, 4.0) for _ in range(4)]
        cases = {
            "VecAdd": [x + y for x, y in zip(xs, ys)],
            "VecMinus": [x - y for x, y in zip(xs, ys)],
            "VecMul": [x * y for x, y in zip(xs, ys)],
            "VecDiv": [x / y for x, y in zip(xs, ys)],
            "VecMAC": [z + x * y for z, x, y in zip(zs, xs, ys)],
        }
        for op, expected in cases.items():
            b = ProgramBuilder()
            vz = b.v_load("z", 0)
            vx = b.v_load("x", 0)
            vy = b.v_load("y", 0)
            srcs = (vz, vx, vy) if op == "VecMAC" else (vx, vy)
            b.v_store("out", 0, b.v_op(op, *srcs))
            b.halt()
            result = machine.run(
                b.build(),
                {"x": xs, "y": ys, "z": zs, "out": [0.0] * 4},
            )
            assert result.array("out") == pytest.approx(expected), op

    def test_unary_vector_ops(self, machine):
        xs = [4.0, 0.25, 1.0, 9.0]
        b = ProgramBuilder()
        vx = b.v_load("x", 0)
        b.v_store("out", 0, b.v_op("VecSqrt", vx))
        b.v_store("out", 4, b.v_op("VecNeg", vx))
        b.v_store("out", 8, b.v_op("VecSgn", b.v_op("VecNeg", vx)))
        b.halt()
        result = machine.run(
            b.build(), {"x": xs, "out": [0.0] * 12}
        )
        out = result.array("out")
        assert out[:4] == pytest.approx([2.0, 0.5, 1.0, 3.0])
        assert out[4:8] == [-4.0, -0.25, -1.0, -9.0]
        assert out[8:] == [-1.0, -1.0, -1.0, -1.0]
