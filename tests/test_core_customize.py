"""Unit tests for focused custom-instruction synthesis helpers."""

import pytest

from repro.core.customize import merge_rules, synthesize_custom_rules
from repro.egraph.rewrite import parse_rewrite
from repro.isa import customized_spec


class TestMergeRules:
    def test_dedupes_by_text(self):
        a = [parse_rewrite("x", "(+ ?a ?b) => (+ ?b ?a)")]
        b = [
            parse_rewrite("y", "(+ ?a ?b) => (+ ?b ?a)"),  # duplicate
            parse_rewrite("z", "(* ?a ?b) => (* ?b ?a)"),
        ]
        merged = merge_rules(a, b)
        assert len(merged) == 2
        assert merged[0].name == "x"

    def test_keeps_base_order(self):
        a = [
            parse_rewrite("one", "(+ ?a 0) => ?a"),
            parse_rewrite("two", "(* ?a 1) => ?a"),
        ]
        merged = merge_rules(a, [])
        assert [r.name for r in merged] == ["one", "two"]


@pytest.mark.slow
class TestFocusedSynthesis:
    def test_small_focus_discovers_bridges(self, spec):
        # Tiny neighbourhood at size 4 so the test stays quick: the
        # identity (sqrtsgn 1 b) = -sgn(b) is a 4-node discovery.
        custom = customized_spec(spec, sqrtsgn=True)
        rules = synthesize_custom_rules(
            custom,
            ("sqrtsgn", "VecSqrtSgn"),
            neighbourhood=("sgn", "neg", "sqrt"),
            max_term_size=4,
            time_budget=60.0,
            max_rules=200,
        )
        assert rules
        texts = {str(r) for r in rules}
        assert any("sqrtsgn" in t for t in texts)
        # every kept rule mentions the custom ops
        for rule in rules:
            assert "sqrtsgn" in str(rule).lower()

    def test_canonical_lift_for_custom_op(self, spec):
        custom = customized_spec(spec, mulsub=True)
        rules = synthesize_custom_rules(
            custom,
            ("mulsub", "VecMulSub"),
            neighbourhood=("-", "*"),
            max_term_size=4,
            time_budget=60.0,
        )
        lifts = [
            r
            for r in rules
            if r.lhs.op == "Vec" and r.rhs.op == "VecMulSub"
        ]
        assert lifts
