"""Every ``REPRO_*`` flag read in ``src/`` is documented.

The doc contract: ``docs/env_flags.md`` lists each flag with a
``## `REPRO_...``` heading.  This test greps the source tree for
``REPRO_``-prefixed names, so adding a new flag without documenting
it fails CI.
"""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
ENV_FLAGS_DOC = ROOT / "docs" / "env_flags.md"

_FLAG = re.compile(r"\bREPRO_[A-Z][A-Z0-9_]*\b")


def _flags_in_tree(tree: Path) -> set[str]:
    found: set[str] = set()
    for path in tree.rglob("*.py"):
        found.update(_FLAG.findall(path.read_text()))
    return found


def test_every_src_flag_is_documented():
    src_flags = _flags_in_tree(ROOT / "src")
    assert src_flags, "expected at least one REPRO_ flag in src/"
    documented = set(_FLAG.findall(ENV_FLAGS_DOC.read_text()))
    missing = src_flags - documented
    assert not missing, (
        f"flags read in src/ but missing from docs/env_flags.md: "
        f"{sorted(missing)}"
    )


def test_documented_flags_have_headings():
    """Each flag gets a real section, not just a passing mention."""
    text = ENV_FLAGS_DOC.read_text()
    documented = set(_FLAG.findall(text))
    for flag in documented:
        assert re.search(rf"^## `{flag}`", text, re.M), (
            f"{flag} appears in docs/env_flags.md without a "
            f"`## \\`{flag}\\`` section heading"
        )


def test_known_flags_present():
    """The flags this PR promises are documented (regression anchor)."""
    text = ENV_FLAGS_DOC.read_text()
    for flag in (
        "REPRO_TRACE",
        "REPRO_LEGACY_EMATCH",
        "REPRO_LEGACY_CVEC",
        "REPRO_LEGACY_INDEX",
        "REPRO_PARALLEL",
        "REPRO_RULE_CACHE",
        "REPRO_SCHEDULE",
        "REPRO_EXPANSION_CACHE",
        "REPRO_CHECKPOINT_DIR",
        "REPRO_SERVICE_PORT",
        "REPRO_SERVICE_WORKERS",
        "REPRO_SERVICE_CACHE",
        "REPRO_SERVICE_TIMEOUT",
    ):
        assert f"## `{flag}`" in text


def test_no_stale_documented_flags():
    """Every documented flag is still read somewhere in ``src/``.

    The reverse sweep: a flag removed from the code must leave the
    docs too, so docs/env_flags.md can't accumulate dead switches.
    """
    live = _flags_in_tree(ROOT / "src") | _flags_in_tree(
        ROOT / "benchmarks"
    )
    documented = set(_FLAG.findall(ENV_FLAGS_DOC.read_text()))
    stale = documented - live
    assert not stale, (
        f"flags documented in docs/env_flags.md but never read in "
        f"src/ or benchmarks/: {sorted(stale)}"
    )
