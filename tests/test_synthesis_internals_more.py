"""Deeper synthesis-pipeline internals."""

from repro.ruler.cvec import CvecSpec
from repro.ruler.enumerate import _compositions, enumerate_terms
from repro.ruler.synthesize import SynthesisConfig, synthesize_rules


class TestCompositions:
    def test_binary_split(self):
        assert list(_compositions(3, 2)) == [(1, 2), (2, 1)]

    def test_ternary_split(self):
        combos = list(_compositions(4, 3))
        assert (1, 1, 2) in combos and (2, 1, 1) in combos
        assert all(sum(c) == 4 for c in combos)
        assert all(all(x >= 1 for x in c) for c in combos)

    def test_unary(self):
        assert list(_compositions(5, 1)) == [(5,)]


class TestEnumerationScaling:
    def test_representative_counts_grow_with_size(self, spec):
        grid = CvecSpec.make(("a", "b"), n_random=12, seed=0)
        small = enumerate_terms(spec, grid, max_size=2)
        large = enumerate_terms(spec, grid, max_size=3)
        assert large.n_representatives > small.n_representatives
        assert large.n_enumerated > small.n_enumerated

    def test_fewer_variables_fewer_reps(self, spec):
        one = enumerate_terms(
            spec, CvecSpec.make(("a",), n_random=12, seed=0), max_size=3
        )
        three = enumerate_terms(
            spec,
            CvecSpec.make(("a", "b", "c"), n_random=12, seed=0),
            max_size=3,
        )
        assert one.n_representatives < three.n_representatives


class TestSynthesisDeterminism:
    def test_same_config_same_rules(self, spec):
        config = SynthesisConfig(max_term_size=3)
        a = synthesize_rules(spec, config)
        b = synthesize_rules(spec, config)
        assert [str(r) for r in a.rules] == [str(r) for r in b.rules]

    def test_different_seed_may_differ_but_stays_sound(self, spec):
        base = synthesize_rules(spec, SynthesisConfig(max_term_size=3))
        reseeded = synthesize_rules(
            spec, SynthesisConfig(max_term_size=3, cvec_seed=99)
        )
        # determinism within a seed, soundness across seeds
        assert base.n_unsound == 0
        assert reseeded.n_unsound == 0

    def test_stage_times_recorded(self, synthesis_size3):
        stages = synthesis_size3.stage_times
        assert set(stages) == {
            "enumerate", "candidates", "verify", "cost_prune",
            "minimize", "generalize",
        }
        assert all(t >= 0 for t in stages.values())


class TestGeneralizationReport:
    def test_report_counts_consistent(self, synthesis_size3):
        report = synthesis_size3.generalization
        assert report is not None
        assert report.n_input_rules == len(
            synthesis_size3.single_lane_rules
        )
        # The full-width dominance prune runs after generalization, so
        # result.rules is the generalized set minus dominated rules.
        full_prune = (synthesis_size3.pruning or {}).get("full_width")
        assert full_prune is not None
        assert report.n_generated == full_prune["n_in"]
        assert len(synthesis_size3.rules) == full_prune["n_kept"]
