"""Semantics of the phased schedule itself (Fig. 3 mechanics)."""

import dataclasses

from repro.compiler.compile import CompileOptions, compile_term
from repro.kernels import matmul_kernel
from repro.lang.parser import parse


class TestRoundProgression:
    def test_costs_monotone_across_rounds(self, isaria_compiler):
        program = matmul_kernel(2, 2, 2).program.term
        _t, report = isaria_compiler.compile_term(program)
        costs = [r.extracted_cost for r in report.rounds]
        assert all(b <= a + 1e-9 for a, b in zip(costs, costs[1:]))
        assert report.final_cost <= costs[-1] + 1e-9

    def test_round_zero_skips_expansion_later_rounds_run_it(
        self, isaria_compiler
    ):
        program = matmul_kernel(2, 2, 2).program.term
        _t, report = isaria_compiler.compile_term(program)
        assert report.rounds[0].expansion is None
        if len(report.rounds) > 1:
            assert report.rounds[1].expansion is not None

    def test_expansion_start_round_zero(self, isaria_compiler):
        options = dataclasses.replace(
            isaria_compiler.options,
            expansion_start_round=0,
            max_rounds=2,
        )
        program = parse(
            "(List (Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3)))"
        )
        _t, report = isaria_compiler.compile_term(
            program, options=options
        )
        assert report.rounds[0].expansion is not None

    def test_max_rounds_respected(self, isaria_compiler):
        options = dataclasses.replace(
            isaria_compiler.options, max_rounds=1
        )
        program = matmul_kernel(2, 2, 2).program.term
        _t, report = isaria_compiler.compile_term(
            program, options=options
        )
        assert len(report.rounds) == 1

    def test_trivial_program_short_circuits(self, isaria_compiler):
        program = parse("(List (Vec 1 2 3 4))")
        compiled, report = isaria_compiler.compile_term(program)
        assert compiled == program  # already minimal
        # loop must terminate quickly (no improvement possible past
        # the first expansion round)
        assert len(report.rounds) <= 2
