"""Tests for zero-overhead hardware loops (Tensilica LOOP/LEND style)."""

import pytest

from repro.machine import Machine, ProgramBuilder, SimulationError
from repro.machine.program import Instr, Program


@pytest.fixture(scope="module")
def machine(spec):
    return Machine(spec)


def sum_loop(use_hw: bool, n: int = 16):
    b = ProgramBuilder()
    i = b.s_const(0)
    one = b.s_const(1)
    acc = b.s_const(0.0)
    if use_hw:
        trips = b.s_const(n)
        b.loop_begin(trips)
    else:
        bound = b.s_const(n)
        b.label("loop")
    x = b.s_load("x", 0, index=i)
    b.s_op_into(acc, "+", acc, x)
    b.s_op_into(i, "+", i, one)
    if use_hw:
        b.loop_end()
    else:
        b.blt(i, bound, "loop")
    b.s_store("out", 0, acc)
    b.halt()
    return b.build()


class TestSemantics:
    def test_counts_iterations(self, machine):
        result = machine.run(
            sum_loop(True), {"x": list(range(16)), "out": [0.0]}
        )
        assert result.array("out") == [sum(range(16))]

    def test_zero_trip_count_skips_body(self, machine):
        b = ProgramBuilder()
        zero = b.s_const(0)
        b.loop_begin(zero)
        poison = b.s_const(666.0)
        b.s_store("out", 0, poison)
        b.loop_end()
        b.halt()
        result = machine.run(b.build(), {"out": [1.0]})
        assert result.array("out") == [1.0]

    def test_nested_loops(self, machine):
        b = ProgramBuilder()
        outer = b.s_const(3)
        inner = b.s_const(4)
        acc = b.s_const(0.0)
        one = b.s_const(1.0)
        b.loop_begin(outer)
        b.loop_begin(inner)
        b.s_op_into(acc, "+", acc, one)
        b.loop_end()
        b.loop_end()
        b.s_store("out", 0, acc)
        b.halt()
        result = machine.run(b.build(), {"out": [0.0]})
        assert result.array("out") == [12.0]

    def test_unmatched_loop_end_rejected(self, machine):
        program = Program([Instr("loop.end"), Instr("halt")])
        with pytest.raises((SimulationError, ValueError)):
            machine.run(program, {})

    def test_unterminated_loop_begin_rejected(self, machine):
        b = ProgramBuilder()
        c = b.s_const(1)
        b.loop_begin(c)
        b.halt()
        with pytest.raises(ValueError):
            machine.run(b.build(), {})


class TestZeroOverhead:
    def test_hw_loop_faster_than_branch_loop(self, machine):
        mem = {"x": [1.0] * 16, "out": [0.0]}
        hw = machine.run(sum_loop(True), dict(mem))
        sw = machine.run(sum_loop(False), dict(mem))
        assert hw.array("out") == sw.array("out")
        # 16 taken branches at 2-cycle penalty each
        assert hw.cycles + 16 <= sw.cycles

    def test_trip_count_read_once_at_entry(self, machine):
        # Overwriting the count register inside the body must not
        # change the iteration count.
        b = ProgramBuilder()
        trips = b.s_const(5)
        acc = b.s_const(0.0)
        one = b.s_const(1.0)
        hundred = b.s_const(100.0)
        b.loop_begin(trips)
        b.s_op_into(acc, "+", acc, one)
        b.s_op_into(trips, "+", trips, hundred)
        b.loop_end()
        b.s_store("out", 0, acc)
        b.halt()
        result = machine.run(b.build(), {"out": [0.0]})
        assert result.array("out") == [5.0]
