"""Tests for rule-set statistics and the synthesis perf counters."""

from repro.egraph.rewrite import parse_rewrite
from repro.ruler.cvec import CvecEvaluator, CvecSpec
from repro.ruler.enumerate import enumerate_terms
from repro.ruler.stats import (
    SynthesisPerf,
    coverage_gaps,
    ops_used,
    size_histogram,
    summarize,
)


def _rules():
    return [
        parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)"),
        parse_rewrite("mac", "(+ ?c (* ?a ?b)) => (mac ?c ?a ?b)"),
        parse_rewrite(
            "lift",
            "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3)) => "
            "(VecAdd (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))",
        ),
    ]


class TestOpsUsed:
    def test_counts_rules_not_occurrences(self):
        counts = ops_used(_rules())
        assert counts["+"] == 3  # mentioned by all three rules
        assert counts["mac"] == 1
        assert counts["VecAdd"] == 1
        assert "Const" not in counts  # leaves excluded
        assert "Wild" not in counts


class TestSizeHistogram:
    def test_buckets(self):
        histogram = size_histogram(_rules())
        assert sum(histogram.values()) == 3
        assert histogram[">20"] == 1  # the lift rule is big

    def test_custom_bins(self):
        histogram = size_histogram(_rules(), bins=(100,))
        assert histogram["1-100"] == 3


class TestCoverageGaps:
    def test_reports_unmentioned_instructions(self, spec):
        gaps = coverage_gaps(_rules(), spec)
        assert "VecSqrt" in gaps
        assert "+" not in gaps

    def test_full_ruleset_has_no_gaps(self, spec, synthesis_size3):
        gaps = coverage_gaps(synthesis_size3.rules, spec)
        assert gaps == [], gaps


class TestSynthesisPerf:
    def test_intern_counts_collisions(self, spec):
        # Repeat fingerprints are the cvec "collision" event that makes
        # two terms candidate-equivalent.
        grid = CvecSpec.make(("a",), n_random=4, seed=0)
        evaluator = CvecEvaluator(spec.interpreter(), grid.envs)
        first = evaluator.intern(("x", "y"))
        assert evaluator.intern(("other",)) != first
        assert evaluator.intern(("x", "y")) == first
        assert evaluator.perf.interned_fingerprints == 2
        assert evaluator.perf.fingerprint_collisions == 1
        assert evaluator.fingerprint(first) == ("x", "y")

    def test_enumeration_exercises_collision_counter(self, spec):
        grid = CvecSpec.make(("a", "b"), n_random=8, seed=0)
        result = enumerate_terms(spec, grid, max_size=3)
        perf = result.perf
        # Every candidate pair came from a fingerprint collision.
        assert perf.fingerprint_collisions >= len(result.pairs) > 0
        assert perf.interned_fingerprints == result.n_representatives
        assert perf.cvec_cache_hits > 0
        assert perf.batched_evals > 0
        assert perf.legacy_evals == 0
        assert set(perf.per_size_times) == {1, 2, 3}

    def test_legacy_backend_counts_tree_walks(self, spec, monkeypatch):
        monkeypatch.setenv("REPRO_LEGACY_CVEC", "1")
        grid = CvecSpec.make(("a", "b"), n_random=8, seed=0)
        result = enumerate_terms(spec, grid, max_size=2)
        assert result.perf.backend == "legacy"
        # One full per-env tree interpretation per fingerprinted term:
        # all four atoms are cvec-distinct, so the counts line up.
        assert result.perf.legacy_evals == result.n_enumerated
        assert result.perf.batched_evals == 0

    def test_merge_sums_counters_and_sizes(self):
        a = SynthesisPerf(batched_evals=3, per_size_times={2: 1.0})
        b = SynthesisPerf(
            batched_evals=4, fingerprint_collisions=2,
            per_size_times={2: 0.5, 3: 2.0},
        )
        merged = a.merge(b)
        assert merged is a
        assert a.batched_evals == 7
        assert a.fingerprint_collisions == 2
        assert a.per_size_times == {2: 1.5, 3: 2.0}

    def test_as_dict_is_json_ready(self):
        import json

        perf = SynthesisPerf(per_size_times={4: 0.25}, per_size_new={4: 9})
        payload = perf.as_dict()
        assert payload["per_size_times"] == {"4": 0.25}
        assert payload["per_size_new"] == {"4": 9}
        assert payload["backend"] == "batched"
        json.dumps(payload)


class TestSummarize:
    def test_text_structure(self, spec):
        text = summarize(_rules(), spec)
        assert text.startswith("3 rules")
        assert "top operators:" in text
        assert "uncovered instructions:" in text

    def test_without_spec(self):
        text = summarize(_rules())
        assert "uncovered" not in text
