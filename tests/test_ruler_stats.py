"""Tests for rule-set statistics."""

from repro.egraph.rewrite import parse_rewrite
from repro.ruler.stats import (
    coverage_gaps,
    ops_used,
    size_histogram,
    summarize,
)


def _rules():
    return [
        parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)"),
        parse_rewrite("mac", "(+ ?c (* ?a ?b)) => (mac ?c ?a ?b)"),
        parse_rewrite(
            "lift",
            "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3)) => "
            "(VecAdd (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))",
        ),
    ]


class TestOpsUsed:
    def test_counts_rules_not_occurrences(self):
        counts = ops_used(_rules())
        assert counts["+"] == 3  # mentioned by all three rules
        assert counts["mac"] == 1
        assert counts["VecAdd"] == 1
        assert "Const" not in counts  # leaves excluded
        assert "Wild" not in counts


class TestSizeHistogram:
    def test_buckets(self):
        histogram = size_histogram(_rules())
        assert sum(histogram.values()) == 3
        assert histogram[">20"] == 1  # the lift rule is big

    def test_custom_bins(self):
        histogram = size_histogram(_rules(), bins=(100,))
        assert histogram["1-100"] == 3


class TestCoverageGaps:
    def test_reports_unmentioned_instructions(self, spec):
        gaps = coverage_gaps(_rules(), spec)
        assert "VecSqrt" in gaps
        assert "+" not in gaps

    def test_full_ruleset_has_no_gaps(self, spec, synthesis_size3):
        gaps = coverage_gaps(synthesis_size3.rules, spec)
        assert gaps == [], gaps


class TestSummarize:
    def test_text_structure(self, spec):
        text = summarize(_rules(), spec)
        assert text.startswith("3 rules")
        assert "top operators:" in text
        assert "uncovered instructions:" in text

    def test_without_spec(self):
        text = summarize(_rules())
        assert "uncovered" not in text
