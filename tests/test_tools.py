"""Tests for the maintenance tools."""

import sys

from repro.core.cache import rules_from_text


class TestRegenRules:
    def test_main_writes_rules_file(self, tmp_path, monkeypatch):
        from repro.tools import regen_rules

        target = tmp_path / "rules.txt"
        monkeypatch.setattr(regen_rules, "DEFAULT_RULES_FILE", target)
        monkeypatch.setattr(sys, "argv", ["regen_rules", "3"])
        regen_rules.main()
        assert target.exists()
        rules = rules_from_text(target.read_text())
        assert len(rules) > 30
        # header records provenance
        assert "max_term_size=3" in target.read_text()


class TestBuildApiDocs:
    def test_fallback_writes_module_pages(self, tmp_path):
        from repro.tools import build_api_docs

        pages = build_api_docs.build_fallback(tmp_path)
        assert len(pages) > 50  # one page per repro module
        index = (tmp_path / "index.md").read_text()
        assert "repro.egraph.runner" in index
        assert "repro.obs" in index
        page = (tmp_path / "repro.obs.md").read_text()
        # exported names and their docstrings land on the page
        assert "Tracer" in page
        assert "tracer_from_env" in page

    def test_main_force_fallback(self, tmp_path, capsys):
        from repro.tools import build_api_docs

        rc = build_api_docs.main(["--force-fallback", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "index.md").exists()
