"""Tests for the maintenance tools."""

import sys

from repro.core.cache import rules_from_text


class TestRegenRules:
    def test_main_writes_rules_file(self, tmp_path, monkeypatch):
        from repro.tools import regen_rules

        target = tmp_path / "rules.txt"
        monkeypatch.setattr(regen_rules, "DEFAULT_RULES_FILE", target)
        monkeypatch.setattr(sys, "argv", ["regen_rules", "3"])
        regen_rules.main()
        assert target.exists()
        rules = rules_from_text(target.read_text())
        assert len(rules) > 30
        # header records provenance
        assert "max_term_size=3" in target.read_text()
