"""Extraction over structurally interesting graphs."""

from repro.egraph.egraph import EGraph
from repro.egraph.extract import Extractor, extract_best
from repro.egraph.rewrite import parse_rewrite
from repro.egraph.runner import RunnerLimits, run_saturation
from repro.lang.parser import parse


def unit_cost(op, payload, child_terms):
    return 1.0


class TestSharedSubgraphExtraction:
    def test_diamond_reuse(self):
        # root uses the same subclass twice: the extracted term must
        # reference one consistent representative.
        g = EGraph()
        root = g.add_term(
            parse("(* (+ (Get x 0) 0) (+ (Get x 0) 0))")
        )
        run_saturation(
            g,
            [parse_rewrite("id", "(+ ?a 0) => ?a")],
            RunnerLimits(max_iterations=3),
        )
        _cost, term = extract_best(g, root, unit_cost)
        assert term == parse("(* (Get x 0) (Get x 0))")

    def test_multi_root_extraction_consistent(self):
        g = EGraph()
        a = g.add_term(parse("(+ (Get x 0) 0)"))
        b = g.add_term(parse("(neg (+ (Get x 0) 0))"))
        run_saturation(
            g,
            [parse_rewrite("id", "(+ ?a 0) => ?a")],
            RunnerLimits(max_iterations=3),
        )
        extractor = Extractor(g, unit_cost)
        term_a = extractor.best_term(a)
        term_b = extractor.best_term(b)
        assert term_a == parse("(Get x 0)")
        assert term_b == parse("(neg (Get x 0))")

    def test_extraction_through_list(self, cost_model):
        g = EGraph()
        root = g.add_term(
            parse("(List (Vec 1 2 3 4) (Vec (Get x 0) (Get x 1) "
                  "(Get x 2) (Get x 3)))")
        )
        cost, term = extract_best(g, root, cost_model)
        assert term.op == "List"
        assert len(term.args) == 2


class TestCostTieBreaking:
    def test_equal_cost_choice_is_deterministic(self):
        g = EGraph()
        a = g.add_term(parse("(+ (Get x 0) (Get y 0))"))
        b = g.add_term(parse("(+ (Get y 0) (Get x 0))"))
        g.union(a, b)
        g.rebuild()
        first = extract_best(g, a, unit_cost)[1]
        second = extract_best(g, a, unit_cost)[1]
        assert first == second

    def test_strictly_better_always_wins(self, cost_model):
        g = EGraph()
        expensive = g.add_term(
            parse("(Vec (+ (Get x 0) 0) (Get x 1) (Get x 2) (Get x 3))")
        )
        cheap = g.add_term(
            parse("(Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3))")
        )
        g.union(expensive, cheap)
        g.rebuild()
        _cost, term = extract_best(g, expensive, cost_model)
        assert term == parse(
            "(Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3))"
        )
