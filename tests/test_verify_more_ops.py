"""Verification across tricky rule families (sign, sqrt, mixed)."""

import pytest

from repro.lang.parser import parse
from repro.ruler.verify import verify_rule, verify_vector_rule


class TestSignRules:
    @pytest.mark.parametrize(
        "lhs,rhs,sound",
        [
            ("(sgn (neg ?a))", "(neg (sgn ?a))", True),
            ("(* (sgn ?a) (sgn ?a))", "(sgn (* ?a ?a))", True),
            ("(sgn (* ?a ?b))", "(* (sgn ?a) (sgn ?b))", True),
            ("(sgn (+ ?a ?b))", "(+ (sgn ?a) (sgn ?b))", False),
            ("(sgn ?a)", "?a", False),
        ],
    )
    def test_cases(self, spec, lhs, rhs, sound):
        result = verify_rule(parse(lhs), parse(rhs), spec)
        assert result.ok is sound, (lhs, rhs, result.detail)


class TestSqrtRules:
    @pytest.mark.parametrize(
        "lhs,rhs,sound",
        [
            ("(* (sqrt ?a) (sqrt ?a))", "?a", False),  # undef at a<0
            ("(sqrt (* ?a ?a))", "(sqrt (* ?a ?a))", False),  # trivial
            ("(* (sqrt ?a) (sqrt ?b))", "(sqrt (* ?a ?b))", False),
            ("(sqrt (/ ?a ?b))", "(/ (sqrt ?a) (sqrt ?b))", False),
        ],
    )
    def test_cases(self, spec, lhs, rhs, sound):
        # Trivial identical-side rules are rejected upstream; here we
        # only check the verifier's verdicts on distinct sides.
        if lhs == rhs:
            return
        result = verify_rule(parse(lhs), parse(rhs), spec)
        assert result.ok is sound, (lhs, rhs, result.detail)

    def test_sqrt_product_undefined_mismatch_detail(self, spec):
        # sqrt(a)*sqrt(b) undefined when either is negative;
        # sqrt(a*b) defined when both are negative: must be caught.
        result = verify_rule(
            parse("(sqrt (* ?a ?b))"),
            parse("(* (sqrt ?a) (sqrt ?b))"),
            spec,
        )
        assert not result.ok


class TestMixedVectorScalar:
    def test_splat_multiplication(self, spec):
        # (VecMul v (Vec c c c c)) == lane-wise scaling: verify a
        # concrete structural identity.
        lhs = parse("(VecMul ?v (Vec 0 0 0 0))")
        rhs = parse("(Vec 0 0 0 0)")
        assert verify_vector_rule(lhs, rhs, spec).ok

    def test_unsound_cross_lane(self, spec):
        # Swapping lanes is not the identity.
        lhs = parse("(Vec ?a ?b ?c ?d)")
        rhs = parse("(Vec ?b ?a ?c ?d)")
        assert not verify_vector_rule(lhs, rhs, spec).ok

    def test_concat_structural(self, spec):
        # Width mismatch: (Concat (Vec a b) (Vec c d)) is a 4-vector;
        # comparing against (Vec a b c d) is sound.
        lhs = parse("(Concat (Vec ?a ?b) (Vec ?c ?d))")
        rhs = parse("(Vec ?a ?b ?c ?d)")
        assert verify_vector_rule(lhs, rhs, spec).ok
