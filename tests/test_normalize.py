"""Unit tests for front-end canonicalization."""

import random

from repro.compiler.normalize import normalize
from repro.interp.env import term_inputs
from repro.interp.value import values_equal
from repro.lang.parser import parse


class TestNormalizeShapes:
    def test_mixed_signs_become_p_minus_n(self):
        term = parse("(+ (- (Get a 0) (Get a 1)) (Get a 2))")
        assert normalize(term) == parse(
            "(- (+ (Get a 0) (Get a 2)) (Get a 1))"
        )

    def test_all_positive_stays_sum(self):
        term = parse("(+ (+ (Get a 0) (Get a 1)) (Get a 2))")
        assert normalize(term) == term

    def test_all_negative_becomes_neg_sum(self):
        term = parse("(- (neg (Get a 0)) (Get a 1))")
        assert normalize(term) == parse(
            "(neg (+ (Get a 0) (Get a 1)))"
        )

    def test_neg_pushed_through(self):
        term = parse("(neg (- (Get a 0) (Get a 1)))")
        assert normalize(term) == parse("(- (Get a 1) (Get a 0))")

    def test_double_negation_cancels(self):
        term = parse("(neg (neg (Get a 0)))")
        assert normalize(term) == parse("(Get a 0)")

    def test_zero_literals_dropped(self):
        term = parse("(+ (Get a 0) 0)")
        assert normalize(term) == parse("(Get a 0)")
        assert normalize(parse("(- 0 0)")) == parse("0")

    def test_normalizes_inside_multiplications(self):
        term = parse("(* (Get a 0) (- (Get a 1) (neg (Get a 2))))")
        assert normalize(term) == parse(
            "(* (Get a 0) (+ (Get a 1) (Get a 2)))"
        )

    def test_qprod_lanes_share_root_shape(self):
        from repro.kernels import quaternion_product_kernel

        instance = quaternion_product_kernel()
        chunk = instance.program.term.args[0]
        assert {lane.op for lane in chunk.args} == {"-"}


class TestNormalizeSemantics:
    def test_random_equivalence(self, spec):
        interp = spec.interpreter()
        rng = random.Random(11)
        samples = [
            "(- (+ (Get a 0) (Get a 1)) (+ (Get a 2) (Get a 3)))",
            "(+ (neg (Get a 0)) (- (Get a 1) (neg (Get a 2))))",
            "(* (- (Get a 0) (Get a 1)) (- (Get a 2) (Get a 3)))",
            "(/ (- (Get a 0) (neg (Get a 1))) (+ (Get a 2) 1))",
            "(sqrt (* (Get a 0) (Get a 0)))",
            "(mac (Get a 0) (- (Get a 1) (Get a 2)) (Get a 3))",
        ]
        for text in samples:
            term = parse(text)
            canon = normalize(term)
            for _ in range(10):
                env = {
                    atom: rng.uniform(-5, 5)
                    for atom in term_inputs(term)
                }
                assert values_equal(
                    interp.evaluate(term, env),
                    interp.evaluate(canon, env),
                ), text

    def test_idempotent(self):
        term = parse("(+ (- (Get a 0) (Get a 1)) (neg (Get a 2)))")
        once = normalize(term)
        assert normalize(once) == once
