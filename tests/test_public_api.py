"""Public-API hygiene: exports exist, are documented, and are stable."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.lang",
    "repro.interp",
    "repro.isa",
    "repro.egraph",
    "repro.ruler",
    "repro.phases",
    "repro.compiler",
    "repro.core",
    "repro.machine",
    "repro.baselines",
    "repro.kernels",
    "repro.bench",
    "repro.obs",
    "repro.service",
    "repro.tools",
]


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_imports_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_every_export_documented(name):
    """Every exported name carries a non-empty docstring.

    Functions, classes, and modules are checked directly; data
    exports (constants, singletons) are checked through their type's
    docstring, so an exported instance of an undocumented class still
    fails.
    """
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if symbol.startswith("__"):  # dunders like __version__
            continue
        if type(obj).__module__ == "typing":  # alias like interp.Value
            continue
        if (
            inspect.isfunction(obj)
            or inspect.isclass(obj)
            or inspect.ismodule(obj)
        ):
            doc = obj.__doc__
        else:
            doc = type(obj).__doc__
        assert doc and doc.strip(), f"{name}.{symbol} lacks a docstring"


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_exported_class_methods_documented(name):
    """Public methods defined on exported classes have docstrings.

    Only methods defined in this code base count — inherited object/
    enum/dataclass machinery is exempt.
    """
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        cls = getattr(module, symbol)
        if not inspect.isclass(cls) or not cls.__module__.startswith(
            "repro"
        ):
            continue
        for attr, member in vars(cls).items():
            if attr.startswith("_"):
                continue
            fn = None
            if inspect.isfunction(member):
                fn = member
            elif isinstance(member, (staticmethod, classmethod)):
                fn = member.__func__
            elif isinstance(member, property):
                fn = member.fget
            if fn is None:
                continue
            assert fn.__doc__ and fn.__doc__.strip(), (
                f"{name}.{symbol}.{attr} lacks a docstring"
            )


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_key_entry_points_signature():
    from repro.core import IsariaFramework, default_compiler
    from repro.compiler import trace_kernel

    params = inspect.signature(IsariaFramework).parameters
    assert set(params) >= {
        "spec", "synthesis_config", "phase_params", "compile_options",
    }
    params = inspect.signature(trace_kernel).parameters
    assert set(params) >= {"name", "fn", "arrays", "width"}
    assert callable(default_compiler)
