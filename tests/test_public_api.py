"""Public-API hygiene: exports exist, are documented, and are stable."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.lang",
    "repro.interp",
    "repro.isa",
    "repro.egraph",
    "repro.ruler",
    "repro.phases",
    "repro.compiler",
    "repro.core",
    "repro.machine",
    "repro.baselines",
    "repro.kernels",
    "repro.bench",
]


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_imports_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PUBLIC_MODULES[1:])
def test_public_callables_documented(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            assert obj.__doc__, f"{name}.{symbol} lacks a docstring"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_key_entry_points_signature():
    from repro.core import IsariaFramework, default_compiler
    from repro.compiler import trace_kernel

    params = inspect.signature(IsariaFramework).parameters
    assert set(params) >= {
        "spec", "synthesis_config", "phase_params", "compile_options",
    }
    params = inspect.signature(trace_kernel).parameters
    assert set(params) >= {"name", "fn", "arrays", "width"}
    assert callable(default_compiler)
