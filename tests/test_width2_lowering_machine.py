"""Lowering and simulation at vector width 2 (width generality)."""

import pytest

from repro.compiler.lowering import LoweringError, lower_program
from repro.isa import fusion_g3_spec
from repro.lang.parser import parse
from repro.machine import Machine


@pytest.fixture(scope="module")
def spec_w2():
    return fusion_g3_spec(vector_width=2)


@pytest.fixture(scope="module")
def machine_w2(spec_w2):
    return Machine(spec_w2)


class TestWidth2Lowering:
    def test_two_lane_vec_literal(self, spec_w2, machine_w2):
        program = lower_program(
            parse("(List (Vec (Get x 0) (Get x 1)))"), spec_w2, {"x": 2}
        )
        result = machine_w2.run(
            program, {"x": [3.0, 4.0], "out": [0.0, 0.0]}
        )
        assert result.array("out") == [3.0, 4.0]

    def test_four_lane_vec_rejected(self, spec_w2):
        with pytest.raises(LoweringError):
            lower_program(parse("(List (Vec 1 2 3 4))"), spec_w2, {})

    def test_two_wide_vecadd(self, spec_w2, machine_w2):
        text = (
            "(List (VecAdd (Vec (Get x 0) (Get x 1)) (Vec 10 20)))"
        )
        program = lower_program(parse(text), spec_w2, {"x": 2})
        result = machine_w2.run(
            program, {"x": [1.0, 2.0], "out": [0.0, 0.0]}
        )
        assert result.array("out") == [11.0, 22.0]

    def test_shuffle_patterns_two_wide(self, spec_w2, machine_w2):
        text = "(List (Vec (Get x 1) (Get x 0)))"
        program = lower_program(parse(text), spec_w2, {"x": 2})
        result = machine_w2.run(
            program, {"x": [5.0, 6.0], "out": [0.0, 0.0]}
        )
        assert result.array("out") == [6.0, 5.0]


class TestWidth2Frontend:
    def test_chunking_respects_width(self, spec_w2):
        from repro.compiler.frontend import trace_kernel

        program = trace_kernel(
            "t", lambda x: [x[0], x[1], x[2]], {"x": 4}, 2
        )
        assert len(program.term.args) == 2  # ceil(3/2)
        assert program.padded_len == 4

    def test_scalar_baseline_width2(self, spec_w2, machine_w2):
        from repro.baselines import compile_scalar
        from repro.kernels import matmul_kernel, padded_memory

        instance = matmul_kernel(2, 2, 2, width=2)
        program = compile_scalar(instance.program, spec_w2)
        result = machine_w2.run(
            program, padded_memory(instance, instance.make_inputs(0))
        )
        assert len(result.array("out")) >= 4
