"""Unit tests for rule verification (exact + fuzz)."""

from repro.lang.parser import parse
from repro.ruler.verify import (
    pattern_to_term,
    polynomial_of,
    verify_rule,
    verify_vector_rule,
)


class TestPolynomialNormalization:
    def test_commutativity_exact(self, spec):
        assert polynomial_of(parse("(+ ?a ?b)"), spec) == polynomial_of(
            parse("(+ ?b ?a)"), spec
        )

    def test_distribution_exact(self, spec):
        assert polynomial_of(
            parse("(* ?a (+ ?b ?c))"), spec
        ) == polynomial_of(parse("(+ (* ?a ?b) (* ?a ?c))"), spec)

    def test_mac_expands(self, spec):
        assert polynomial_of(parse("(mac ?c ?a ?b)"), spec) == (
            polynomial_of(parse("(+ ?c (* ?a ?b))"), spec)
        )

    def test_vector_ops_reduce_to_scalar(self, spec):
        assert polynomial_of(parse("(VecAdd ?a ?b)"), spec) == (
            polynomial_of(parse("(+ ?a ?b)"), spec)
        )

    def test_non_polynomial_is_none(self, spec):
        assert polynomial_of(parse("(sqrt ?a)"), spec) is None
        assert polynomial_of(parse("(/ ?a ?b)"), spec) is None
        assert polynomial_of(parse("(+ ?a (sgn ?b))"), spec) is None

    def test_cancellation(self, spec):
        assert polynomial_of(parse("(- ?a ?a)"), spec) == {}


class TestVerifyRule:
    def test_sound_polynomial_rule(self, spec):
        result = verify_rule(
            parse("(* ?a (+ ?b ?c))"),
            parse("(+ (* ?a ?b) (* ?a ?c))"),
            spec,
        )
        assert result.ok and result.method == "exact"

    def test_unsound_polynomial_rule(self, spec):
        result = verify_rule(parse("(+ ?a ?b)"), parse("(* ?a ?b)"), spec)
        assert not result.ok and result.method == "exact"

    def test_sound_fuzz_rule(self, spec):
        result = verify_rule(
            parse("(sgn (sgn ?a))"), parse("(sgn ?a)"), spec
        )
        assert result.ok and result.method == "fuzz"

    def test_definedness_mismatch_rejected(self, spec):
        # (/ (* a b) b) == a except at b = 0, where only the lhs is
        # undefined: must be rejected.
        result = verify_rule(
            parse("(/ (* ?a ?b) ?b)"), parse("?a"), spec
        )
        assert not result.ok

    def test_sqrt_of_square_rejected(self, spec):
        # sqrt(a^2) = |a|, not a.
        result = verify_rule(parse("(sqrt (* ?a ?a))"), parse("?a"), spec)
        assert not result.ok

    def test_division_identity_accepted(self, spec):
        result = verify_rule(parse("(/ ?a 1)"), parse("?a"), spec)
        assert result.ok


class TestVerifyVectorRule:
    def test_sound_vector_rule(self, spec):
        result = verify_vector_rule(
            parse("(VecAdd ?a ?b)"), parse("(VecAdd ?b ?a)"), spec
        )
        assert result.ok

    def test_sound_lift_rule(self, spec):
        lhs = parse(
            "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3))"
        )
        rhs = parse(
            "(VecAdd (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))"
        )
        assert verify_vector_rule(lhs, rhs, spec).ok

    def test_unsound_lift_rejected(self, spec):
        lhs = parse(
            "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3))"
        )
        rhs = parse(
            "(VecAdd (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b0 ?b0 ?b0))"
        )
        assert not verify_vector_rule(lhs, rhs, spec).ok

    def test_mixed_kind_wildcards(self, spec):
        # ?c is a vector, the Vec lanes are scalars.
        lhs = parse("(VecMul ?c (Vec 1 1 1 1))")
        rhs = parse("?c")
        assert verify_vector_rule(lhs, rhs, spec).ok


class TestPatternToTerm:
    def test_wildcards_become_symbols(self):
        term = pattern_to_term(parse("(+ ?a (neg ?b))"))
        assert term == parse("(+ a (neg b))")
