"""Finer-grained timing semantics of the simulator."""

import pytest

from repro.machine import Machine, ProgramBuilder


@pytest.fixture(scope="module")
def machine(spec):
    return Machine(spec)


class TestForwarding:
    def test_result_forwarding_latency(self, machine, spec):
        # Dependent adds: each must wait its producer's latency.
        b = ProgramBuilder()
        acc = b.s_const(0.0)
        one = b.s_const(1.0)
        n = 10
        for _ in range(n):
            acc = b.s_op("+", acc, one)
        b.s_store("out", 0, acc)
        b.halt()
        result = machine.run(b.build(), {"out": [0.0]})
        add_latency = spec.instruction("+").latency
        # at least n sequential adds' worth of cycles
        assert result.cycles >= n * add_latency

    def test_independent_ops_pipeline(self, machine):
        b = ProgramBuilder()
        regs = [b.s_const(float(i)) for i in range(8)]
        sums = [
            b.s_op("+", regs[i], regs[i + 1]) for i in range(0, 8, 2)
        ]
        for i, s in enumerate(sums):
            b.s_store("out", i, s)
        b.halt()
        result = machine.run(b.build(), {"out": [0.0] * 4})
        # 16 instructions at <=2/cycle with 1-cycle adds: well under
        # a fully serialized bound
        assert result.cycles < 16


class TestDrainAccounting:
    def test_inflight_latency_counted(self, machine, spec):
        # A long-latency op right before halt must still be paid for.
        b = ProgramBuilder()
        x = b.s_load("x", 0)
        b.s_op("sqrt", x)  # result unused but in flight
        b.halt()
        with_op = machine.run(b.build(), {"x": [4.0]})

        b2 = ProgramBuilder()
        b2.s_load("x", 0)
        b2.halt()
        without = machine.run(b2.build(), {"x": [4.0]})
        assert with_op.cycles >= without.cycles + (
            spec.instruction("sqrt").latency - 2
        )


class TestIssueRules:
    def test_three_units_do_not_triple_issue(self, machine):
        # Issue width is 2: three independent ops on three different
        # units cannot all share one cycle.
        b = ProgramBuilder()
        s = b.s_const(1.0)
        v = b.v_const((1.0,) * 4)
        b.s_op("+", s, s)        # scalar unit
        b.v_op("VecAdd", v, v)   # vector unit
        b.s_load("x", 0)         # mem unit
        b.halt()
        result = machine.run(b.build(), {"x": [0.0] * 4})
        # 5 non-halt instructions at <=2/cycle: >= 3 issue cycles
        assert result.cycles >= 3
