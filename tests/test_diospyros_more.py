"""More Diospyros-baseline tests: rule structure and scheduling."""

from repro.compiler.diospyros import (
    _lift_rules,
    _mac_rules,
    _padding_rules,
    _scalar_rules,
    _vector_rules,
    diospyros_rules,
)
from repro.isa import customized_spec


class TestRuleGroups:
    def test_scalar_rules_pure_scalar(self, spec):
        for rule in _scalar_rules():
            assert "Vec" not in str(rule)

    def test_padding_rules_one_per_lane(self, spec):
        pads = _padding_rules(spec.vector_width)
        assert len(pads) == spec.vector_width
        for i, rule in enumerate(pads):
            assert f"(+ ?x{i} 0)" in str(rule)

    def test_lift_rules_cover_every_vector_op(self, spec):
        lifted = {rule.rhs.op for rule in _lift_rules(spec)}
        expected = {i.name for i in spec.vector_instructions()}
        assert lifted == expected

    def test_mac_rules_present(self, spec):
        texts = {str(r) for r in _mac_rules(spec)}
        assert "(+ ?c (* ?a ?b)) => (mac ?c ?a ?b)" in texts
        assert (
            "(VecAdd ?c (VecMul ?a ?b)) => (VecMAC ?c ?a ?b)" in texts
        )

    def test_vector_rules_vector_only(self):
        for rule in _vector_rules():
            assert str(rule).count("Vec") >= 2

    def test_no_custom_instruction_rules(self, spec):
        # Diospyros's hand rules never adapt to ISA extensions — the
        # burden Isaria removes (§5.4).
        custom = customized_spec(spec, sqrtsgn=True, mulsub=True)
        texts = " ".join(str(r) for r in diospyros_rules(custom))
        assert "sqrtsgn" not in texts.lower()
        assert "mulsub" not in texts.lower()
        assert len(diospyros_rules(custom)) == len(diospyros_rules(spec))


class TestCompilerBehaviour:
    def test_rounds_terminate(self, spec):
        from repro.compiler.diospyros import DiospyrosCompiler
        from repro.lang.parser import parse

        compiler = DiospyrosCompiler(spec, max_rounds=3)
        program = parse("(List (Vec (Get x 0) (Get x 1) (Get x 2) 0))")
        _compiled, report = compiler.compile(program)
        assert len(report.rounds) <= 3

    def test_already_vector_program_stable(self, spec):
        from repro.compiler.diospyros import DiospyrosCompiler
        from repro.lang.parser import parse

        compiler = DiospyrosCompiler(spec)
        program = parse(
            "(List (VecAdd (Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3))"
            " (Vec (Get y 0) (Get y 1) (Get y 2) (Get y 3))))"
        )
        compiled, report = compiler.compile(program)
        assert report.final_cost <= report.initial_cost
        # still a vector program
        assert compiled.args[0].op in ("VecAdd", "VecMAC")
