"""Tests for chunk-lane alignment (the front end's isomorphic shapes)."""

import numpy as np

from repro.compiler.normalize import align_chunk_lanes, signed_decomposition
from repro.kernels import (
    conv2d_kernel,
    default_suite,
    quaternion_product_kernel,
    run_reference,
)
from repro.lang.parser import parse


def lane_shape(term):
    """Structural skeleton: ops only, leaves collapsed."""
    if not term.args:
        return "leaf"
    return (term.op,) + tuple(lane_shape(a) for a in term.args)


class TestSignedDecomposition:
    def test_simple(self):
        p, n = signed_decomposition(parse("(- (Get a 0) (Get a 1))"))
        assert p == (parse("(Get a 0)"),)
        assert n == (parse("(Get a 1)"),)

    def test_nested(self):
        p, n = signed_decomposition(
            parse("(+ (- (Get a 0) (Get a 1)) (neg (Get a 2)))")
        )
        assert p == (parse("(Get a 0)"),)
        assert set(n) == {parse("(Get a 1)"), parse("(Get a 2)")}

    def test_non_additive_is_atomic(self):
        p, n = signed_decomposition(parse("(* (Get a 0) (Get a 1))"))
        assert len(p) == 1 and n == ()

    def test_zero_vanishes(self):
        assert signed_decomposition(parse("0")) == ((), ())


class TestAlignChunkLanes:
    def test_pads_shorter_lanes(self):
        lanes = [
            parse("(+ (Get a 0) (Get a 1))"),
            parse("(Get a 2)"),
            parse("(+ (+ (Get a 3) (Get a 4)) (Get a 5))"),
            parse("0"),
        ]
        aligned = align_chunk_lanes(lanes)
        shapes = {lane_shape(lane) for lane in aligned}
        assert len(shapes) == 1  # all isomorphic

    def test_mixed_signs_align_to_minus(self):
        lanes = [
            parse("(- (Get a 0) (Get a 1))"),
            parse("(Get a 2)"),
            parse("(neg (Get a 3))"),
            parse("(+ (Get a 4) (Get a 5))"),
        ]
        aligned = align_chunk_lanes(lanes)
        assert {lane.op for lane in aligned} == {"-"}
        shapes = {lane_shape(lane) for lane in aligned}
        assert len(shapes) == 1

    def test_semantics_preserved(self, spec):
        interp = spec.interpreter()
        lanes = [
            parse("(- (Get a 0) (Get a 1))"),
            parse("(Get a 2)"),
            parse("(neg (Get a 3))"),
            parse("(+ (Get a 4) (+ (Get a 5) (Get a 6)))"),
        ]
        aligned = align_chunk_lanes(lanes)
        env = {"a": [1.5, 2.0, -3.0, 4.0, 5.0, 0.5, -1.0, 9.0]}
        for before, after in zip(lanes, aligned):
            assert abs(
                float(interp.evaluate(before, env))
                - float(interp.evaluate(after, env))
            ) < 1e-12


class TestKernelAlignment:
    def test_qprod_chunk_is_isomorphic(self):
        instance = quaternion_product_kernel()
        chunk = instance.program.term.args[0]
        shapes = {lane_shape(lane) for lane in chunk.args}
        assert len(shapes) == 1

    def test_conv_chunks_are_isomorphic(self):
        instance = conv2d_kernel(3, 3, 2, 2)
        for chunk in instance.program.term.args:
            shapes = {lane_shape(lane) for lane in chunk.args}
            assert len(shapes) == 1, chunk

    def test_aligned_programs_still_match_references(self, spec):
        interp = spec.interpreter()
        for instance in default_suite(
            conv2d_sizes=[(3, 3, 2, 2)],
            matmul_sizes=[(2, 3, 3)],
            qr_sizes=[3],
        ):
            inputs = instance.make_inputs(9)
            env = {k: [float(x) for x in v] for k, v in inputs.items()}
            chunks = interp.evaluate(instance.program.term, env)
            flat = [lane for chunk in chunks for lane in chunk]
            got = flat[: instance.output_len]
            want = run_reference(instance, inputs)
            assert np.allclose(got, want, rtol=1e-7), instance.key

    def test_raw_term_not_aligned(self):
        # Baselines see the program as written.
        instance = quaternion_product_kernel()
        raw_chunk = instance.program.raw_term.args[0]
        shapes = {lane_shape(lane) for lane in raw_chunk.args}
        assert len(shapes) > 1
