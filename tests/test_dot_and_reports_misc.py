"""Miscellaneous coverage: runner reports, iteration stats, dot labels."""

from repro.egraph.dot import _node_label
from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import parse_rewrite
from repro.egraph.runner import RunnerLimits, run_saturation
from repro.lang.parser import parse


class TestDotLabels:
    def test_leaf_labels(self):
        assert _node_label("Const", 3) == "3"
        assert _node_label("Symbol", "a") == "a"
        assert _node_label("Wild", "w0") == "?w0"
        assert _node_label("Get", ("x", 2)) == "x[2]"
        assert _node_label("VecAdd", None) == "VecAdd"


class TestIterationReports:
    def test_applied_counts_recorded(self):
        g = EGraph()
        g.add_term(parse("(+ (Get x 0) 0)"))
        g.add_term(parse("(+ (Get x 1) 0)"))
        rule = parse_rewrite("id", "(+ ?a 0) => ?a")
        report = run_saturation(g, [rule], RunnerLimits(max_iterations=4))
        first = report.iterations[0]
        assert first.applied["id"] == 2
        assert first.n_unions >= 2
        assert report.elapsed >= 0

    def test_node_class_counts_match_graph(self):
        g = EGraph()
        g.add_term(parse("(* (Get a 0) (Get b 0))"))
        report = run_saturation(g, [], RunnerLimits(max_iterations=1))
        last = report.iterations[-1]
        assert last.n_nodes == g.n_nodes
        assert last.n_classes == g.n_classes


class TestNodesFastCounter:
    def test_overestimates_after_dedup(self):
        g = EGraph()
        a = g.add_term(parse("(neg (Get x 0))"))
        b = g.add_term(parse("(neg (Get y 0))"))
        g.union(
            g.add_term(parse("(Get x 0)")),
            g.add_term(parse("(Get y 0)")),
        )
        g.rebuild()
        # congruence dedups (neg ..) nodes; the fast counter keeps the
        # historical count
        assert g.n_nodes_fast >= g.n_nodes
        assert g.equivalent(a, b)
