"""Shared fixtures.

Expensive artifacts (rule synthesis, generated compilers) are session-
scoped and sized for test speed: tests exercise the full pipeline on a
small synthesis (term size 3-4), while the benchmarks use the full
configuration.
"""

from __future__ import annotations

import pytest

from repro.compiler.compile import CompileOptions
from repro.core import IsariaFramework
from repro.egraph.runner import RunnerLimits
from repro.isa import fusion_g3_spec
from repro.phases import CostModel
from repro.ruler import SynthesisConfig, synthesize_rules


@pytest.fixture(scope="session")
def spec():
    return fusion_g3_spec()


@pytest.fixture(scope="session")
def cost_model(spec):
    return CostModel(spec)


@pytest.fixture(scope="session")
def synthesis_size3(spec):
    return synthesize_rules(spec, SynthesisConfig(max_term_size=3))


@pytest.fixture(scope="session")
def synthesis_size4(spec):
    return synthesize_rules(spec, SynthesisConfig(max_term_size=4))


def fast_compile_options() -> CompileOptions:
    """Reduced saturation limits so integration tests stay quick."""
    return CompileOptions(
        max_rounds=4,
        expansion_limits=RunnerLimits(
            max_iterations=4, max_nodes=12_000, time_limit=6.0
        ),
        compilation_limits=RunnerLimits(
            max_iterations=10, max_nodes=20_000, time_limit=8.0
        ),
        optimization_limits=RunnerLimits(
            max_iterations=5, max_nodes=12_000, time_limit=5.0
        ),
    )


@pytest.fixture(scope="session")
def isaria_compiler(spec):
    """A generated compiler from a size-4 synthesis (fast, useful)."""
    framework = IsariaFramework(
        spec,
        synthesis_config=SynthesisConfig(max_term_size=4),
        compile_options=fast_compile_options(),
    )
    return framework.generate_compiler()
