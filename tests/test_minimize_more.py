"""More minimization behaviour tests."""

from repro.egraph.rewrite import parse_rewrite
from repro.ruler.minimize import _filter_pass, is_derivable, minimize_rules


class TestFilterPass:
    def test_derivable_candidates_dropped_in_one_pass(self):
        accepted = [
            parse_rewrite("comm", "(+ ?w0 ?w1) => (+ ?w1 ?w0)"),
            parse_rewrite("zero", "(+ ?w0 0) => ?w0"),
        ]
        remaining = [
            # derivable: commute then drop zero
            parse_rewrite("d1", "(+ 0 ?w0) => ?w0"),
            # not derivable from the accepted two
            parse_rewrite("k1", "(* ?w0 1) => ?w0"),
        ]
        from repro.ruler.minimize import _FILTER_LIMITS

        kept = _filter_pass(remaining, accepted, _FILTER_LIMITS)
        names = {r.name for r in kept}
        assert "d1" not in names
        assert "k1" in names

    def test_multi_step_derivation(self):
        accepted = [
            parse_rewrite("sub", "(- ?w0 ?w1) => (+ ?w0 (neg ?w1))"),
            parse_rewrite("comm", "(+ ?w0 ?w1) => (+ ?w1 ?w0)"),
        ]
        # (- a b) => (+ (neg b) a): two steps
        rule = parse_rewrite(
            "two-step", "(- ?w0 ?w1) => (+ (neg ?w1) ?w0)"
        )
        assert is_derivable(rule, accepted)

    def test_not_derivable_without_bridge(self):
        accepted = [parse_rewrite("comm", "(+ ?w0 ?w1) => (+ ?w1 ?w0)")]
        rule = parse_rewrite("sub", "(- ?w0 ?w1) => (+ ?w0 (neg ?w1))")
        assert not is_derivable(rule, accepted)


class TestBatching:
    def test_batch_one_equals_greedy(self):
        candidates = [
            parse_rewrite("a", "(+ ?w0 0) => ?w0"),
            parse_rewrite("b", "(+ 0 ?w0) => ?w0"),  # needs comm; kept
            parse_rewrite("c", "(+ (+ ?w0 0) 0) => ?w0"),  # derivable
        ]
        kept, aborted = minimize_rules(candidates, batch_size=1)
        assert not aborted
        names = [r.name for r in kept]
        assert "a" in names and "b" in names
        assert "c" not in names

    def test_empty_candidates(self):
        kept, aborted = minimize_rules([])
        assert kept == [] and not aborted

    def test_large_batch_keeps_everything_in_batch(self):
        candidates = [
            parse_rewrite("a", "(+ ?w0 0) => ?w0"),
            parse_rewrite("a-dup", "(+ (+ ?w0 0) 0) => (+ ?w0 0)"),
        ]
        # both land in one batch: the derivable duplicate survives
        kept, _ = minimize_rules(candidates, batch_size=2)
        assert len(kept) == 2
        # with batch_size=1 the second is filtered
        kept, _ = minimize_rules(candidates, batch_size=1)
        assert len(kept) == 1


class TestScreenEnvCache:
    def test_evaluator_cached_per_wildcard_signature(self):
        from repro.isa import fusion_g3_spec
        from repro.ruler.stats import SynthesisPerf

        interpreter = fusion_g3_spec().interpreter()
        candidates = [
            # three rules over {?w0, ?w1}, one over {?w0}: two distinct
            # signatures, so exactly two evaluator builds.
            parse_rewrite("comm", "(+ ?w0 ?w1) => (+ ?w1 ?w0)"),
            parse_rewrite("mcomm", "(* ?w0 ?w1) => (* ?w1 ?w0)"),
            parse_rewrite("sub", "(- ?w0 ?w1) => (+ ?w0 (neg ?w1))"),
            parse_rewrite("zero", "(+ ?w0 0) => ?w0"),
        ]
        perf = SynthesisPerf()
        kept, aborted = minimize_rules(
            candidates, interpreter=interpreter, perf=perf
        )
        assert not aborted
        assert perf.screen_env_cache_misses == 2
        assert perf.screen_env_cache_hits == 2
        assert len(kept) == len(candidates)  # all sound, none derivable

    def test_unsound_candidates_still_screened_through_cache(self):
        from repro.isa import fusion_g3_spec
        from repro.ruler.stats import SynthesisPerf

        interpreter = fusion_g3_spec().interpreter()
        candidates = [
            parse_rewrite("good", "(+ ?w0 ?w1) => (+ ?w1 ?w0)"),
            parse_rewrite("bad", "(+ ?w0 ?w1) => (- ?w0 ?w1)"),
        ]
        perf = SynthesisPerf()
        kept, _ = minimize_rules(
            candidates, interpreter=interpreter, perf=perf
        )
        assert [r.name for r in kept] == ["good"]
        assert perf.minimize_screened == 1
        assert perf.screen_env_cache_misses == 1
        assert perf.screen_env_cache_hits == 1
