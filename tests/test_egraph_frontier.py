"""Unit tests for frontier (incremental) matching and match budgets."""

from repro.egraph.egraph import EGraph
from repro.egraph.ematch import ematch
from repro.egraph.rewrite import parse_rewrite
from repro.egraph.runner import RunnerLimits, run_saturation
from repro.lang.parser import parse


class TestTouchedTracking:
    def test_new_classes_are_touched(self):
        g = EGraph()
        g.add_term(parse("(+ a b)"))
        touched = g.take_touched()
        assert len(touched) == 3
        assert g.take_touched() == set()

    def test_union_touches_survivor(self):
        g = EGraph()
        a = g.add_term(parse("a"))
        b = g.add_term(parse("b"))
        g.take_touched()
        g.union(a, b)
        g.rebuild()
        touched = g.take_touched()
        assert g.find(a) in touched

    def test_congruence_merges_are_touched(self):
        g = EGraph()
        g.add_term(parse("(neg a)"))
        g.add_term(parse("(neg b)"))
        a = g.add_term(parse("a"))
        b = g.add_term(parse("b"))
        g.take_touched()
        g.union(a, b)
        g.rebuild()
        touched = g.take_touched()
        # the parent class merged by congruence must be reported
        parent = g.find(g.lookup_term(parse("(neg a)")))
        assert parent in touched


class TestRootRestriction:
    def test_roots_filter_matches(self):
        g = EGraph()
        first = g.add_term(parse("(+ 1 2)"))
        second = g.add_term(parse("(+ 3 4)"))
        pattern = parse("(+ ?a ?b)")
        all_matches = ematch(g, pattern, op_index=g.op_index())
        assert len(all_matches) == 2
        only_first = ematch(
            g, pattern, op_index=g.op_index(), roots={g.find(first)}
        )
        assert [g.find(c) for c, _ in only_first] == [g.find(first)]
        none = ematch(
            g, pattern, op_index=g.op_index(), roots=set()
        )
        assert none == []

    def test_bare_wildcard_respects_roots(self):
        g = EGraph()
        a = g.add_term(parse("1"))
        g.add_term(parse("2"))
        matches = ematch(g, parse("?x"), roots={g.find(a)})
        assert len(matches) == 1


class TestFrontierSaturation:
    def test_frontier_still_completes_chains(self):
        # (f (f (f x))) with f->g rewriting: frontier mode must rewrite
        # all levels even though levels 2,3 only become interesting
        # after level 1 changes.
        g = EGraph()
        root = g.add_term(parse("(neg (neg (neg (Get x 0))))"))
        report = run_saturation(
            g,
            [parse_rewrite("nn", "(neg (neg ?a)) => ?a")],
            RunnerLimits(max_iterations=10),
            frontier=True,
        )
        assert g.equivalent(root, g.lookup_term(parse("(neg (Get x 0))")))
        assert report.n_iterations >= 1

    def test_frontier_matches_full_on_lift_chain(self, spec):
        # A two-level lift chain completes under frontier matching.
        rules = [
            parse_rewrite(
                "lift-add",
                "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3))"
                " => (VecAdd (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))",
            ),
            parse_rewrite(
                "lift-mul",
                "(Vec (* ?a0 ?b0) (* ?a1 ?b1) (* ?a2 ?b2) (* ?a3 ?b3))"
                " => (VecMul (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))",
            ),
        ]
        lanes = " ".join(
            f"(+ (* (Get a {i}) (Get b {i})) (Get c {i}))"
            for i in range(4)
        )
        g = EGraph()
        root = g.add_term(parse(f"(Vec {lanes})"))
        run_saturation(
            g, rules, RunnerLimits(max_iterations=6), frontier=True
        )
        expected = parse(
            "(VecAdd (VecMul (Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3))"
            " (Vec (Get b 0) (Get b 1) (Get b 2) (Get b 3)))"
            " (Vec (Get c 0) (Get c 1) (Get c 2) (Get c 3)))"
        )
        assert g.lookup_term(expected) == g.find(root)


class TestWorkBudget:
    def test_exhausted_budget_truncates(self):
        g = EGraph()
        for i in range(50):
            g.add_term(parse(f"(+ (Get x {i}) 1)"))
        matches = ematch(
            g, parse("(+ ?a ?b)"), op_index=g.op_index(), work_budget=10
        )
        assert len(matches) < 50

    def test_identity_rules_not_capped(self):
        # ?a => (+ ?a 0) must reach every class despite schedulers.
        g = EGraph()
        for i in range(30):
            g.add_term(parse(f"(Get x {i})"))
        run_saturation(
            g,
            [parse_rewrite("pad", "?a => (+ ?a 0)")],
            RunnerLimits(max_iterations=3, match_limit=5),
        )
        # every original class now has a + variant
        for i in range(30):
            cid = g.lookup_term(parse(f"(Get x {i})"))
            ops = {n[0] for n in g.eclass(cid).nodes}
            assert "+" in ops, i
