"""Extra end-to-end checks across kernels and compilers."""

import numpy as np
import pytest

from repro.baselines import compile_scalar, compile_slp
from repro.kernels import (
    conv2d_kernel,
    matmul_kernel,
    padded_memory,
    qr_kernel,
    run_reference,
)
from repro.machine import Machine


@pytest.fixture(scope="module")
def machine(spec):
    return Machine(spec)


class TestCrossSeedCorrectness:
    """Each baseline must be correct on several random input draws."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_scalar_conv(self, spec, machine, seed):
        instance = conv2d_kernel(4, 4, 2, 2)
        inputs = instance.make_inputs(seed)
        program = compile_scalar(instance.program, spec)
        result = machine.run(program, padded_memory(instance, inputs))
        assert np.allclose(
            result.array("out")[: instance.output_len],
            run_reference(instance, inputs),
            rtol=1e-4,
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_slp_matmul(self, spec, machine, seed):
        instance = matmul_kernel(4, 2, 4)
        inputs = instance.make_inputs(seed)
        program = compile_slp(instance.program, spec)
        result = machine.run(program, padded_memory(instance, inputs))
        assert np.allclose(
            result.array("out")[: instance.output_len],
            run_reference(instance, inputs),
            rtol=1e-4,
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_scalar_qr_well_conditioned(self, spec, machine, seed):
        instance = qr_kernel(3)
        inputs = instance.make_inputs(seed)
        program = compile_scalar(instance.program, spec)
        result = machine.run(program, padded_memory(instance, inputs))
        assert np.allclose(
            result.array("out")[: instance.output_len],
            run_reference(instance, inputs),
            rtol=1e-3,
            atol=1e-4,
        )


class TestNonSquareShapes:
    @pytest.mark.parametrize(
        "m,k,n", [(1, 4, 4), (4, 1, 4), (2, 5, 3), (3, 2, 7)]
    )
    def test_matmul_rectangular(self, spec, machine, m, k, n):
        instance = matmul_kernel(m, k, n)
        inputs = instance.make_inputs(1)
        program = compile_scalar(instance.program, spec)
        result = machine.run(program, padded_memory(instance, inputs))
        assert np.allclose(
            result.array("out")[: instance.output_len],
            run_reference(instance, inputs),
            rtol=1e-4,
        )

    @pytest.mark.parametrize(
        "shape", [(2, 5, 2, 2), (5, 2, 2, 3), (3, 4, 1, 2), (4, 3, 2, 1)]
    )
    def test_conv_rectangular(self, spec, machine, shape):
        instance = conv2d_kernel(*shape)
        inputs = instance.make_inputs(1)
        program = compile_scalar(instance.program, spec)
        result = machine.run(program, padded_memory(instance, inputs))
        assert np.allclose(
            result.array("out")[: instance.output_len],
            run_reference(instance, inputs),
            rtol=1e-4,
        )

    def test_one_by_one_filter(self, spec, machine):
        instance = conv2d_kernel(3, 3, 1, 1)
        inputs = instance.make_inputs(2)
        program = compile_scalar(instance.program, spec)
        result = machine.run(program, padded_memory(instance, inputs))
        assert np.allclose(
            result.array("out")[: instance.output_len],
            run_reference(instance, inputs),
            rtol=1e-5,
        )


class TestDegenerateInputs:
    def test_all_zero_inputs(self, spec, machine):
        instance = matmul_kernel(3, 3, 3)
        inputs = {"A": [0.0] * 9, "B": [0.0] * 9}
        program = compile_scalar(instance.program, spec)
        result = machine.run(program, padded_memory(instance, inputs))
        assert result.array("out")[:9] == [0.0] * 9

    def test_identity_matrix(self, spec, machine):
        instance = matmul_kernel(3, 3, 3)
        eye = [1.0, 0, 0, 0, 1.0, 0, 0, 0, 1.0]
        b = [float(i) for i in range(9)]
        program = compile_scalar(instance.program, spec)
        result = machine.run(
            program, padded_memory(instance, {"A": eye, "B": b})
        )
        assert result.array("out")[:9] == b
