"""Unit tests for the interpreter and value model."""

from fractions import Fraction

import pytest

from repro.interp.env import (
    corner_envs,
    env_variables,
    sample_envs,
    term_inputs,
)
from repro.interp.interpreter import EvalError
from repro.interp.value import UNDEFINED, values_equal
from repro.lang.parser import parse


@pytest.fixture(scope="module")
def interp(spec):
    return spec.interpreter()


class TestScalarOps:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("(+ 2 3)", 5),
            ("(- 2 3)", -1),
            ("(* 2 3)", 6),
            ("(/ 6 3)", 2),
            ("(neg 2)", -2),
            ("(sgn -7)", -1),
            ("(sgn 0)", 0),
            ("(sgn 3)", 1),
            ("(sqrt 9)", 3),
            ("(mac 1 2 3)", 7),
        ],
    )
    def test_ground(self, interp, text, expected):
        assert interp.evaluate(parse(text), {}) == expected

    def test_division_exact(self, interp):
        assert interp.evaluate(parse("(/ 1 3)"), {}) == Fraction(1, 3)

    def test_variables(self, interp):
        env = {"a": 2, "b": 5}
        assert interp.evaluate(parse("(* a b)"), env) == 10

    def test_gets(self, interp):
        env = {"x": [1.0, 2.0, 3.0]}
        assert interp.evaluate(parse("(Get x 2)"), env) == 3.0
        env2 = {("x", 2): 9}
        assert interp.evaluate(parse("(Get x 2)"), env2) == 9


class TestUndefined:
    def test_div_by_zero(self, interp):
        assert interp.evaluate(parse("(/ 1 0)"), {}) is UNDEFINED

    def test_sqrt_negative(self, interp):
        assert interp.evaluate(parse("(sqrt -4)"), {}) is UNDEFINED

    def test_propagates(self, interp):
        assert interp.evaluate(parse("(+ 1 (/ 2 0))"), {}) is UNDEFINED

    def test_vector_lane_collapses(self, interp):
        term = parse("(Vec 1 (/ 1 0) 2 3)")
        assert interp.evaluate(term, {}) is UNDEFINED


class TestVectors:
    def test_vec_literal(self, interp):
        assert interp.evaluate(parse("(Vec 1 2 3 4)"), {}) == (1, 2, 3, 4)

    def test_concat(self, interp):
        term = parse("(Concat (Vec 1 2) (Vec 3 4))")
        assert interp.evaluate(term, {}) == (1, 2, 3, 4)

    def test_lanewise(self, interp):
        term = parse("(VecMAC (Vec 1 1 1 1) (Vec 1 2 3 4) (Vec 2 2 2 2))")
        assert interp.evaluate(term, {}) == (3, 5, 7, 9)

    def test_single_lane_reduction(self, interp):
        # Vector ops applied to scalars: the §3.1 trick.
        assert interp.evaluate(parse("(VecAdd 2 3)"), {}) == 5
        assert interp.evaluate(parse("(VecSqrt 16)"), {}) == 4

    def test_width_mismatch_raises(self, interp):
        term = parse("(VecAdd (Vec 1 2) (Vec 1 2 3))")
        with pytest.raises(EvalError):
            interp.evaluate(term, {})

    def test_list_returns_tuple(self, interp):
        term = parse("(List (Vec 1 2 3 4) (Vec 5 6 7 8))")
        assert interp.evaluate(term, {}) == ((1, 2, 3, 4), (5, 6, 7, 8))


class TestErrors:
    def test_unbound_variable(self, interp):
        with pytest.raises(EvalError):
            interp.evaluate(parse("missing"), {})

    def test_unbound_array(self, interp):
        with pytest.raises(EvalError):
            interp.evaluate(parse("(Get nothere 0)"), {})

    def test_wildcard_not_evaluable(self, interp):
        with pytest.raises(EvalError):
            interp.evaluate(parse("?a"), {})

    def test_scalar_op_on_vector_raises(self, interp):
        with pytest.raises(EvalError):
            interp.evaluate(parse("(+ (Vec 1 2 3 4) 1)"), {})


class TestValuesEqual:
    def test_scalar_tolerance(self):
        assert values_equal(0.1 + 0.2, 0.3)
        assert not values_equal(0.1, 0.2)

    def test_exact_fraction(self):
        assert values_equal(Fraction(1, 3), Fraction(1, 3))
        assert not values_equal(Fraction(1, 3), Fraction(1, 4))

    def test_undefined_only_equals_undefined(self):
        assert values_equal(UNDEFINED, UNDEFINED)
        assert not values_equal(UNDEFINED, 0)
        assert not values_equal((1, 2), UNDEFINED)

    def test_vectors(self):
        assert values_equal((1, 2), (1.0, 2.0))
        assert not values_equal((1, 2), (1, 2, 3))
        assert not values_equal((1, 2), 1)


class TestEnvGeneration:
    def test_env_variables(self):
        term = parse("(+ a (* (Get x 1) (Get x 0)))")
        symbols, gets = env_variables(term)
        assert symbols == ("a",)
        assert set(gets) == {("x", 1), ("x", 0)}
        assert set(term_inputs(term)) == {"a", ("x", 1), ("x", 0)}

    def test_corner_envs_cover_zero_and_signs(self):
        envs = corner_envs(("a",))
        values = {env["a"] for env in envs}
        assert Fraction(0) in values
        assert Fraction(1) in values
        assert Fraction(-1) in values

    def test_sample_envs_deterministic(self):
        a = sample_envs(("a", "b"), n_random=5, seed=3)
        b = sample_envs(("a", "b"), n_random=5, seed=3)
        assert a == b
        c = sample_envs(("a", "b"), n_random=5, seed=4)
        assert a != c
