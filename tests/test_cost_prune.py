"""Unit tests for cost-aware dominated-rule pruning."""

from __future__ import annotations

import math

import pytest

from repro.egraph.rewrite import parse_rewrite
from repro.isa import fusion_g3_spec
from repro.phases.cost import CostModel
from repro.ruler.cost_prune import (
    _RESCUE_LIMITS,
    CostPruneReport,
    cost_model_digest,
    cost_prune_rules,
    legacy_costprune_requested,
    lhs_subsumes,
    rule_delta,
)
from repro.ruler.minimize import _FILTER_LIMITS
from repro.ruler.stats import SynthesisPerf


@pytest.fixture(scope="module")
def spec():
    return fusion_g3_spec()


class TestLhsSubsumes:
    def test_wildcard_subsumes_anything(self):
        gen = parse_rewrite("g", "?w0 => ?w0")
        spe = parse_rewrite("s", "(+ (* ?a ?b) 1) => ?a")
        assert lhs_subsumes(gen.lhs, spe.lhs)
        assert not lhs_subsumes(spe.lhs, gen.lhs)

    def test_structure_must_match(self):
        gen = parse_rewrite("g", "(+ ?w0 ?w1) => ?w0")
        spe = parse_rewrite("s", "(* ?w0 ?w1) => ?w0")
        assert not lhs_subsumes(gen.lhs, spe.lhs)

    def test_wildcard_binds_subpattern(self):
        gen = parse_rewrite("g", "(+ ?w0 ?w1) => ?w0")
        spe = parse_rewrite("s", "(+ (* ?a ?b) 0) => ?a")
        assert lhs_subsumes(gen.lhs, spe.lhs)
        assert not lhs_subsumes(spe.lhs, gen.lhs)

    def test_repeated_wildcard_needs_equal_subpatterns(self):
        gen = parse_rewrite("g", "(+ ?w0 ?w0) => ?w0")
        same = parse_rewrite("s1", "(+ (* ?a ?b) (* ?a ?b)) => ?a")
        diff = parse_rewrite("s2", "(+ (* ?a ?b) (* ?b ?a)) => ?a")
        assert lhs_subsumes(gen.lhs, same.lhs)
        assert not lhs_subsumes(gen.lhs, diff.lhs)

    def test_alpha_renaming_is_mutual(self):
        a = parse_rewrite("a", "(+ ?w0 ?w1) => ?w0")
        b = parse_rewrite("b", "(+ ?x ?y) => ?x")
        assert lhs_subsumes(a.lhs, b.lhs)
        assert lhs_subsumes(b.lhs, a.lhs)

    def test_literal_mismatch(self):
        gen = parse_rewrite("g", "(+ ?w0 0) => ?w0")
        spe = parse_rewrite("s", "(+ ?w0 1) => ?w0")
        assert not lhs_subsumes(gen.lhs, spe.lhs)


class TestRuleDelta:
    def test_simplifying_rule_has_positive_delta(self, spec):
        model = CostModel(spec)
        rule = parse_rewrite("r", "(+ ?w0 0) => ?w0")
        assert rule_delta(model, rule) > 0

    def test_commutativity_is_neutral(self, spec):
        model = CostModel(spec)
        rule = parse_rewrite("r", "(+ ?w0 ?w1) => (+ ?w1 ?w0)")
        assert rule_delta(model, rule) == 0

    def test_expansion_rule_has_negative_delta(self, spec):
        model = CostModel(spec)
        rule = parse_rewrite("r", "?w0 => (+ ?w0 0)")
        assert rule_delta(model, rule) < 0


class TestCostPrune:
    def test_dominated_rule_dropped(self, spec):
        # The general zero-elimination dominates the specific one
        # (same delta comes out better through the general LHS's
        # smaller term), and the specific is derivable from it.
        general = parse_rewrite("gen", "(+ ?w0 0) => ?w0")
        specific = parse_rewrite("spec", "(+ (neg ?w0) 0) => (neg ?w0)")
        kept, report = cost_prune_rules([general, specific], spec)
        names = {r.name for r in kept}
        assert names == {"gen"}
        assert report.n_dominated == 1
        assert report.n_in == 2 and report.n_kept == 1

    def test_non_derivable_dominated_rule_rescued(self, spec):
        # "gen" dominates "mul1" (alpha-equal LHS, better delta), but
        # nothing in the kept set derives ``(* ?w0 1)``, so the
        # derivability rescue must bring it back.
        general = parse_rewrite("gen", "(+ ?w0 ?w1) => ?w0")
        mul1 = parse_rewrite("mul1", "(+ ?w0 ?w1) => (* ?w0 1)")
        kept, report = cost_prune_rules([general, mul1], spec)
        names = {r.name for r in kept}
        assert "mul1" in names
        assert report.n_rescued >= 1
        assert report.n_in == report.n_kept + report.n_dominated

    def test_bare_wildcard_lhs_exempt_both_sides(self, spec):
        # Introduction rules neither dominate nor get dominated: both
        # survive even though one bare-wildcard LHS "subsumes" the
        # other's.
        intro_a = parse_rewrite("ia", "?w0 => (+ ?w0 0)")
        intro_b = parse_rewrite("ib", "?w0 => (* ?w0 1)")
        kept, report = cost_prune_rules([intro_a, intro_b], spec)
        assert {r.name for r in kept} == {"ia", "ib"}
        assert report.n_dominated == 0

    def test_instruction_coverage_rescued(self, spec):
        # Only one rule introduces VecMAC; even if dominance would
        # drop it, the instruction-coverage guard keeps the op
        # reachable.
        general = parse_rewrite(
            "gen", "(VecAdd ?w0 ?w1) => (VecAdd ?w1 ?w0)"
        )
        mac = parse_rewrite(
            "mac",
            "(VecAdd (VecMul ?a ?b) ?c) => (VecMAC ?c ?a ?b)",
        )
        kept, _ = cost_prune_rules([general, mac], spec)
        assert "mac" in {r.name for r in kept}

    def test_output_preserves_input_order(self, spec):
        # A stable filter: the derivability shrink downstream relies on
        # orientation pairs (L => R next to R => L) staying adjacent,
        # so survivors must come back in input order, not delta order.
        rules = [
            parse_rewrite("intro", "?w0 => (+ ?w0 0)"),
            parse_rewrite("comm", "(+ ?w0 ?w1) => (+ ?w1 ?w0)"),
            parse_rewrite("zero", "(+ ?w0 0) => ?w0"),
        ]
        kept, _ = cost_prune_rules(rules, spec)
        names = [r.name for r in kept]
        assert names == [r.name for r in rules if r.name in set(names)]
        assert names.index("intro") < names.index("zero")

    def test_report_invariant_and_perf_counters(self, spec):
        rules = [
            parse_rewrite("gen", "(+ ?w0 0) => ?w0"),
            parse_rewrite("spec", "(+ (neg ?w0) 0) => (neg ?w0)"),
            parse_rewrite("absorb", "(* ?w0 0) => 0"),
        ]
        perf = SynthesisPerf()
        kept, report = cost_prune_rules(rules, spec, perf=perf)
        assert report.n_in == report.n_kept + report.n_dominated
        assert report.n_in == len(rules)
        assert report.n_kept == len(kept)
        assert perf.costprune_dominated == report.n_dominated
        assert perf.costprune_rescued == report.n_rescued
        assert report.cost_model_digest == cost_model_digest(spec)

    def test_empty_input(self, spec):
        kept, report = cost_prune_rules([], spec)
        assert kept == []
        assert report == CostPruneReport(
            cost_model_digest=cost_model_digest(spec)
        )


class TestDigest:
    def test_digest_is_stable_and_isa_sensitive(self, spec):
        from repro.isa.families import isa_family

        d1 = cost_model_digest(spec)
        assert d1 == cost_model_digest(spec)
        assert len(d1) == 16
        masked = isa_family("masked").spec(4)
        assert cost_model_digest(masked) != d1

    def test_digest_width_sensitive(self):
        from repro.isa.families import isa_family

        fam = isa_family("masked")
        assert cost_model_digest(fam.spec(4)) != cost_model_digest(
            fam.spec(8)
        )


class TestLegacyFlag:
    def test_flag_parsing(self, monkeypatch):
        for value in ("1", "true", "YES", " on "):
            monkeypatch.setenv("REPRO_LEGACY_COSTPRUNE", value)
            assert legacy_costprune_requested()
        for value in ("", "0", "no", "off"):
            monkeypatch.setenv("REPRO_LEGACY_COSTPRUNE", value)
            assert not legacy_costprune_requested()
        monkeypatch.delenv("REPRO_LEGACY_COSTPRUNE")
        assert not legacy_costprune_requested()


class TestDeterministicLimits:
    def test_rescue_limits_are_wall_clock_free(self):
        assert math.isinf(_RESCUE_LIMITS.time_limit)

    def test_filter_limits_are_wall_clock_free(self):
        # The satellite fix: derivability minimization must not depend
        # on machine load.  Every budget that remains is deterministic.
        assert math.isinf(_FILTER_LIMITS.time_limit)
