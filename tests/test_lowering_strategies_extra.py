"""More lowering coverage: strategy selection and generated code."""

import numpy as np
import pytest

from repro.compiler.lowering import lower_program
from repro.lang.parser import parse
from repro.machine import Machine


@pytest.fixture(scope="module")
def machine(spec):
    return Machine(spec)


class TestStrategySelection:
    def test_unaligned_contiguous_run(self, spec, machine):
        # Gets 1..4 of an 8-long array: contiguous but not aligned —
        # still a single load at offset 1 (our machine allows it).
        text = "(List (Vec (Get x 1) (Get x 2) (Get x 3) (Get x 4)))"
        program = lower_program(parse(text), spec, {"x": 8})
        assert program.count("v.load") == 1
        result = machine.run(
            program,
            {"x": [float(i) for i in range(8)], "out": [0.0] * 4},
        )
        assert result.array("out") == [1.0, 2.0, 3.0, 4.0]

    def test_cross_window_contiguous_needs_shuffle(self, spec, machine):
        # Gets 2..5 span two aligned windows; contiguity wins first:
        # our lowering prefers one unaligned load.
        text = "(List (Vec (Get x 2) (Get x 3) (Get x 4) (Get x 5)))"
        program = lower_program(parse(text), spec, {"x": 8})
        result = machine.run(
            program,
            {"x": [float(i) for i in range(8)], "out": [0.0] * 4},
        )
        assert result.array("out") == [2.0, 3.0, 4.0, 5.0]

    def test_duplicated_gets_single_window(self, spec, machine):
        text = "(List (Vec (Get x 0) (Get x 0) (Get x 1) (Get x 1)))"
        program = lower_program(parse(text), spec, {"x": 4})
        assert program.count("v.shuffle") == 1
        result = machine.run(
            program, {"x": [7.0, 8.0, 0.0, 0.0], "out": [0.0] * 4}
        )
        assert result.array("out") == [7.0, 7.0, 8.0, 8.0]

    def test_mixed_const_nonzero_and_gets(self, spec, machine):
        text = "(List (Vec (Get x 0) 5 (Get x 1) 9))"
        program = lower_program(parse(text), spec, {"x": 4})
        result = machine.run(
            program, {"x": [1.0, 2.0, 0.0, 0.0], "out": [0.0] * 4}
        )
        assert result.array("out") == [1.0, 5.0, 2.0, 9.0]

    def test_nested_vector_expression(self, spec, machine):
        text = (
            "(List (VecMAC (Vec 1 1 1 1)"
            " (VecAdd (Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3))"
            "         (Vec 1 1 1 1))"
            " (Vec (Get y 0) (Get y 1) (Get y 2) (Get y 3))))"
        )
        program = lower_program(parse(text), spec, {"x": 4, "y": 4})
        result = machine.run(
            program,
            {
                "x": [1.0, 2.0, 3.0, 4.0],
                "y": [2.0, 2.0, 2.0, 2.0],
                "out": [0.0] * 4,
            },
        )
        # 1 + (x+1)*y
        assert result.array("out") == [5.0, 7.0, 9.0, 11.0]

    def test_scalar_expression_inside_lane(self, spec, machine):
        text = (
            "(List (Vec (mac (Get x 0) (Get x 1) (Get x 2))"
            " (sqrt (Get x 3)) (sgn (neg (Get x 0))) (/ (Get x 1) 2)))"
        )
        program = lower_program(parse(text), spec, {"x": 4})
        result = machine.run(
            program, {"x": [2.0, 4.0, 3.0, 16.0], "out": [0.0] * 4}
        )
        assert np.allclose(
            result.array("out"), [14.0, 4.0, -1.0, 2.0]
        )


class TestSharedStructure:
    def test_repeated_chunk_lowered_once(self, spec):
        chunk = "(VecAdd (Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3))" \
                " (Vec 1 1 1 1))"
        program = lower_program(
            parse(f"(List {chunk} {chunk})"), spec, {"x": 4}
        )
        # one compute, two stores
        assert program.count("v.op") == 1
        assert program.count("v.store") == 2

    def test_deep_shared_scalar_tree(self, spec, machine):
        text = (
            "(List (Vec (* (+ (Get x 0) (Get x 1)) (+ (Get x 0) "
            "(Get x 1))) 0 0 0))"
        )
        program = lower_program(parse(text), spec, {"x": 4})
        adds = [
            i for i in program.instrs
            if i.opcode == "s.op" and i.op == "+"
        ]
        assert len(adds) == 1  # CSE
        result = machine.run(
            program, {"x": [2.0, 3.0, 0.0, 0.0], "out": [0.0] * 4}
        )
        assert result.array("out")[0] == 25.0
