"""Unit tests for e-matching."""

from repro.egraph.egraph import EGraph
from repro.egraph.ematch import ematch, match_in_class
from repro.lang.parser import parse


def _graph(*texts):
    g = EGraph()
    roots = [g.add_term(parse(t)) for t in texts]
    return g, roots


class TestMatchInClass:
    def test_simple(self):
        g, (root,) = _graph("(+ (Get x 0) 1)")
        bindings = match_in_class(g, parse("(+ ?a ?b)"), root)
        assert len(bindings) == 1
        assert bindings[0]["a"] == g.lookup_term(parse("(Get x 0)"))

    def test_leaf_pattern(self):
        g, (root,) = _graph("(+ 1 1)")
        assert match_in_class(g, parse("(+ 1 1)"), root) == [{}]
        assert match_in_class(g, parse("(+ 1 2)"), root) == []

    def test_nonlinear(self):
        g, (same, diff) = _graph("(+ (Get x 0) (Get x 0))",
                                 "(+ (Get x 0) (Get x 1))")
        pattern = parse("(+ ?a ?a)")
        assert len(match_in_class(g, pattern, same)) == 1
        assert match_in_class(g, pattern, diff) == []

    def test_multiple_nodes_in_class(self):
        g, (ab, ba) = _graph("(+ a b)", "(+ b a)")
        g.union(ab, ba)
        g.rebuild()
        bindings = match_in_class(g, parse("(+ ?x ?y)"), ab)
        assert len(bindings) == 2

    def test_cap_truncates(self):
        g = EGraph()
        root = g.add_term(parse("(+ a b)"))
        for i in range(20):
            g.union(root, g.add_term(parse(f"(+ a c{i})")))
        g.rebuild()
        capped = match_in_class(g, parse("(+ ?x ?y)"), root, cap=5)
        assert len(capped) == 5


class TestEmatch:
    def test_finds_all_roots(self):
        g, _ = _graph("(+ 1 2)", "(* (+ 3 4) 5)")
        matches = ematch(g, parse("(+ ?a ?b)"), op_index=g.op_index())
        assert len(matches) == 2

    def test_bare_wildcard_matches_every_class(self):
        g, _ = _graph("(+ 1 2)")
        matches = ematch(g, parse("?a"))
        assert len(matches) == g.n_classes

    def test_limit(self):
        g, _ = _graph("(+ 1 2)", "(+ 3 4)", "(+ 5 6)")
        matches = ematch(g, parse("(+ ?a ?b)"), limit=2)
        assert len(matches) == 2

    def test_op_index_equivalent_to_scan(self):
        g, _ = _graph("(+ 1 (* 2 (neg 3)))", "(* (neg 3) 4)")
        pattern = parse("(* ?a ?b)")
        with_index = ematch(g, pattern, op_index=g.op_index())
        without = ematch(g, pattern)
        assert sorted(
            (g.find(c), tuple(sorted(b.items()))) for c, b in with_index
        ) == sorted(
            (g.find(c), tuple(sorted(b.items()))) for c, b in without
        )

    def test_deep_pattern(self):
        g, (root,) = _graph("(VecAdd (Vec 1 2 3 4) (Vec 5 6 7 8))")
        pattern = parse("(VecAdd (Vec ?a ?b ?c ?d) ?rest)")
        matches = ematch(g, pattern, op_index=g.op_index())
        assert len(matches) == 1
        _, binding = matches[0]
        assert binding["a"] == g.lookup_term(parse("1"))
