"""The ISA-family layer: descriptors, masked machine semantics,
tail-masking lowering, lane-utilization counters, and the width-aware
baseline/suite plumbing that rides on it."""

from __future__ import annotations

import pytest

from repro.baselines.nature import has_nature_kernel
from repro.bench.harness import measure_baseline
from repro.compiler.lowering import lower_program
from repro.core.artifact import spec_semantics_hash
from repro.isa import (
    avx_like_spec,
    bundled_spec_factories,
    family_of,
    fusion_g3_spec,
    isa_family,
    masked_spec,
    spec_by_name,
)
from repro.kernels import (
    default_suite,
    matmul_kernel,
    quaternion_product_kernel,
    suite_by_key,
)
from repro.kernels.specs import default_vector_width
from repro.lang import builders as B
from repro.lang import term as T
from repro.machine import Machine, ProgramBuilder


class TestFamilyDescriptors:
    def test_bundled_families_and_widths(self):
        assert isa_family("fusion-g3").widths == (2, 4, 8, 16)
        assert isa_family("avx-like").widths == (4, 8, 16)
        assert isa_family("masked").widths == (4, 8, 16)
        assert isa_family("masked").masked
        assert not isa_family("avx-like").masked

    def test_spec_names_follow_convention(self):
        assert isa_family("fusion-g3").spec().name == "fusion-g3"
        assert isa_family("avx-like").spec().name == "avx-like-w8"
        assert isa_family("masked").spec(16).name == "masked-w16"

    def test_unsupported_width_rejected(self):
        with pytest.raises(ValueError, match="widths"):
            isa_family("avx-like").spec(2)

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError, match="bundled"):
            isa_family("neon")

    def test_family_of_parses_spec_names(self):
        assert family_of("masked-w8") == "masked"
        assert family_of("avx-like-w16") == "avx-like"
        assert family_of("fusion-g3") == "fusion-g3"
        # Unknown families fall back to the raw name, even with a
        # width-like suffix.
        assert family_of("fusion-g3+mulsub-w4") == "fusion-g3+mulsub-w4"

    def test_bundled_spec_factories_cover_every_width(self):
        factories = bundled_spec_factories()
        for family_name in ("fusion-g3", "avx-like", "masked"):
            family = isa_family(family_name)
            for name in family.spec_names():
                assert name in factories
                spec = factories[name]()
                assert spec.name == name
        assert spec_by_name("masked-w4").masked

    def test_capability_flags_on_specs(self):
        avx = avx_like_spec(8)
        assert avx.models_alignment
        assert avx.vec_unaligned_cost > avx.vec_contiguous_cost
        masked = masked_spec(8)
        assert masked.masked and masked.mask_cost > 0
        base = fusion_g3_spec()
        assert not base.masked and not base.models_alignment


class TestFingerprintStability:
    def test_base_hash_unchanged_by_new_fields(self):
        # The new spec fields hash only when non-default, so the
        # shipped fusion-g3 artifacts keep their fingerprints.
        base = spec_semantics_hash(fusion_g3_spec())
        assert "masked" not in _hash_parts(fusion_g3_spec())
        assert spec_semantics_hash(masked_spec(4)) != base
        assert spec_semantics_hash(avx_like_spec(4)) != base

    def test_mask_and_alignment_parts_hash(self):
        assert "masked" in _hash_parts(masked_spec(8))
        assert "unaligned" in _hash_parts(avx_like_spec(8))


def _hash_parts(spec) -> str:
    # spec_semantics_hash digests a parts string; rebuild just the
    # conditional suffix the new fields contribute.
    parts = []
    if spec.masked:
        parts.append(f"masked/{spec.mask_cost}")
    if spec.vec_unaligned_cost is not None:
        parts.append(f"unaligned/{spec.vec_unaligned_cost}")
    return " ".join(parts)


class TestMaskedMachine:
    def _machine(self, width=4):
        return Machine(masked_spec(width))

    def test_masked_load_zeroes_inactive_lanes(self):
        b = ProgramBuilder()
        m = b.m_const((1, 1, 1, 0))
        v = b.v_load_m("x", 0, m)
        b.v_store("out", 0, v)
        b.halt()
        result = self._machine().run(
            b.build(),
            {"x": [5.0, 6.0, 7.0, 8.0], "out": [0.0] * 4},
        )
        assert result.array("out") == [5.0, 6.0, 7.0, 0.0]

    def test_masked_store_preserves_inactive_lanes(self):
        b = ProgramBuilder()
        v = b.v_load("x", 0)
        m = b.m_const((1, 0, 0, 1))
        b.v_store_m("out", 0, v, m)
        b.halt()
        result = self._machine().run(
            b.build(),
            {"x": [1.0, 2.0, 3.0, 4.0], "out": [9.0] * 4},
        )
        assert result.array("out") == [1.0, 9.0, 9.0, 4.0]

    def test_masked_op_zeroes_inactive_lanes(self):
        b = ProgramBuilder()
        v = b.v_load("x", 0)
        m = b.m_const((1, 1, 0, 0))
        r = b.v_op_m("VecAdd", m, v, v)
        b.v_store("out", 0, r)
        b.halt()
        result = self._machine().run(
            b.build(),
            {"x": [1.0, 2.0, 3.0, 4.0], "out": [0.0] * 4},
        )
        assert result.array("out") == [2.0, 4.0, 0.0, 0.0]

    def test_lane_utilization_counters(self):
        b = ProgramBuilder()
        v = b.v_load("x", 0)  # 4 active / 4 issued
        m = b.m_const((1, 1, 1, 0))
        r = b.v_op_m("VecAdd", m, v, v)  # 3 / 4, masked
        b.v_store("out", 0, r)  # 4 / 4
        b.halt()
        result = self._machine().run(
            b.build(), {"x": [1.0] * 4, "out": [0.0] * 4}
        )
        assert result.vector_ops == 3
        assert result.masked_ops == 1
        assert result.lanes_issued == 12
        assert result.lanes_active == 11
        assert result.lane_utilization == pytest.approx(11 / 12)
        assert result.masked_op_share == pytest.approx(1 / 3)

    def test_all_scalar_program_reports_full_utilization(self):
        b = ProgramBuilder()
        b.s_store("out", 0, b.s_const(1.0))
        b.halt()
        result = self._machine().run(b.build(), {"out": [0.0] * 4})
        assert result.lanes_issued == 0
        assert result.lane_utilization == 1.0

    def test_bad_mask_width_rejected(self):
        from repro.machine.simulator import SimulationError

        b = ProgramBuilder()
        b.m_const((1, 1))
        b.halt()
        with pytest.raises(SimulationError):
            self._machine().run(b.build(), {})


class TestUnalignedLoads:
    def test_v_loadu_reads_a_misaligned_run(self):
        b = ProgramBuilder()
        v = b.v_loadu("x", 3)
        b.v_store("out", 0, v)
        b.halt()
        machine = Machine(avx_like_spec(8))
        result = machine.run(
            b.build(),
            {"x": [float(i) for i in range(16)], "out": [0.0] * 8},
        )
        assert result.array("out") == [float(i) for i in range(3, 11)]

    def test_v_loadu_latency_grows_with_width(self):
        from repro.machine.program import Instr

        loadu = Instr(opcode="v.loadu", dst="v0", array="x", offset=0)
        load = Instr(opcode="v.load", dst="v0", array="x", offset=0)
        for width, extra in ((4, 1), (8, 1), (16, 2)):
            machine = Machine(avx_like_spec(width))
            assert machine.instruction_latency(loadu) == (
                machine.instruction_latency(load) + extra
            )


class TestTailMaskingLowering:
    def _chunks(self, length, width):
        """Frontend-style chunked Vec literals for a Get-run kernel."""
        chunks = []
        for start in range(0, length, width):
            lanes = [
                B.get("a", i) if i < length else B.const(0)
                for i in range(start, start + width)
            ]
            chunks.append(B.vec(*lanes))
        return T.make("List", *chunks)

    def test_masked_tail_avoids_scalar_epilogue(self):
        spec = masked_spec(4)
        program = lower_program(
            self._chunks(6, 4), spec, {"a": 6}, output_len=6
        )
        ops = [i.opcode for i in program.instrs]
        assert ops.count("v.store") == 1
        assert ops.count("v.store.m") == 1
        assert ops.count("v.load.m") == 1
        assert "v.insert" not in ops
        assert not any(op.startswith("s.") for op in ops)
        result = Machine(spec).run(
            program,
            {"a": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 0.0, 0.0],
             "out": [9.0] * 8},
        )
        # Active lanes copied; the masked store leaves padding alone.
        assert result.array("out")[:6] == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]

    def test_masked_tail_ignores_junk_padding_lanes(self):
        # Extraction can leave computed junk (an unfolded ``(* 0 0)``)
        # in padding lanes; under a prefix mask those lanes are dead
        # and must not force the v.insert path.
        spec = masked_spec(4)
        junk = B.mul(B.const(0), B.const(0))
        chunk = B.vec(B.get("a", 0), B.get("a", 1), junk, junk)
        program = lower_program(
            T.make("List", chunk), spec, {"a": 2}, output_len=2
        )
        ops = [i.opcode for i in program.instrs]
        assert "v.load.m" in ops and "v.store.m" in ops
        assert "v.insert" not in ops
        assert not any(op.startswith("s.") for op in ops)

    def test_unmasked_spec_keeps_plain_stores(self):
        program = lower_program(
            self._chunks(6, 4), fusion_g3_spec(), {"a": 6}, output_len=6
        )
        ops = [i.opcode for i in program.instrs]
        assert "v.store.m" not in ops and "v.load.m" not in ops

    def test_masked_vector_op_cone_is_predicated(self):
        spec = masked_spec(4)
        lanes = [B.get("a", i) for i in range(2)] + [B.const(0)] * 2
        chunk = B.vec_add(B.vec(*lanes), B.vec(*lanes))
        program = lower_program(
            T.make("List", chunk), spec, {"a": 2}, output_len=2
        )
        ops = [i.opcode for i in program.instrs]
        assert "v.op.m" in ops and "v.op" not in ops
        result = Machine(spec).run(
            program, {"a": [3.0, 4.0, 0.0, 0.0], "out": [0.0] * 4}
        )
        assert result.array("out")[:2] == [6.0, 8.0]

    def test_avx_like_misaligned_run_uses_v_loadu(self):
        chunk = B.vec(*[B.get("a", i) for i in range(1, 9)])
        program = lower_program(
            T.make("List", chunk), avx_like_spec(8), {"a": 16},
            output_len=8,
        )
        ops = [i.opcode for i in program.instrs]
        assert "v.loadu" in ops
        # The base ISA does not model alignment: the same misaligned
        # run lowers to a plain (free-form) v.load.
        base = lower_program(
            T.make("List", chunk), fusion_g3_spec(8), {"a": 16},
            output_len=8,
        )
        base_ops = [i.opcode for i in base.instrs]
        assert "v.loadu" not in base_ops and "v.load" in base_ops


class TestNatureWidthCoverage:
    def test_qp_uncovered_off_width_4(self):
        qp4 = quaternion_product_kernel(4)
        qp8 = quaternion_product_kernel(8)
        assert has_nature_kernel(qp4)  # 1-arg back-compat
        assert has_nature_kernel(qp4, fusion_g3_spec())
        assert not has_nature_kernel(qp8, avx_like_spec(8))
        assert not has_nature_kernel(qp8, masked_spec(8))

    def test_harness_skips_qp_off_width_4_without_raising(self):
        qp8 = quaternion_product_kernel(8)
        measurement = measure_baseline(
            "nature", qp8, avx_like_spec(8)
        )
        assert measurement.error == "no library kernel"

    def test_matmul_library_kernel_is_width_generic(self):
        # n = 8 exercises the vector column loop at width 8, not just
        # the scalar tail.
        instance = matmul_kernel(2, 2, 8, width=8)
        measurement = measure_baseline(
            "nature", instance, avx_like_spec(8)
        )
        assert measurement.error is None
        assert measurement.correct


class TestSuiteWidthThreading:
    def test_spec_threads_width_to_every_kernel(self):
        suite = default_suite(
            spec=avx_like_spec(8),
            conv2d_sizes=[(3, 3, 2, 2)],
            matmul_sizes=[(2, 2, 2)],
            qr_sizes=[3],
        )
        assert suite and all(i.program.width == 8 for i in suite)

    def test_width_spec_conflict_rejected(self):
        with pytest.raises(ValueError, match="conflicts"):
            default_suite(width=4, spec=masked_spec(8))

    def test_env_flag_sets_default_width(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_WIDTH", "8")
        assert default_vector_width() == 8
        assert quaternion_product_kernel().program.width == 8
        monkeypatch.delenv("REPRO_VECTOR_WIDTH")
        assert default_vector_width() == 4

    def test_env_flag_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_WIDTH", "wide")
        with pytest.raises(ValueError, match="REPRO_VECTOR_WIDTH"):
            default_vector_width()
        monkeypatch.setenv("REPRO_VECTOR_WIDTH", "1")
        with pytest.raises(ValueError, match="at least 2"):
            default_vector_width()

    def test_suite_by_key_accepts_spec(self):
        by_key = suite_by_key(spec=masked_spec(8))
        assert by_key["qprod"].program.width == 8


class TestMaskedVerification:
    def test_sound_rule_passes_on_masked_spec(self):
        from repro.lang.parser import parse
        from repro.ruler.verify import verify_vector_rule

        result = verify_vector_rule(
            parse("(VecAdd ?a ?b)"), parse("(VecAdd ?b ?a)"),
            masked_spec(4),
        )
        assert result.ok

    def test_projection_rejects_cross_lane_smuggling(self):
        from repro.ruler.verify import _verify_masked_projection

        spec = masked_spec(4)
        interpreter = spec.interpreter()
        names = ["x0", "x1", "x2", "x3"]
        kinds = {name: "scalar" for name in names}
        lanes = [T.symbol(name) for name in names]
        lhs = B.vec(*lanes)
        swapped = B.vec(lanes[3], lanes[1], lanes[2], lanes[0])
        failure = _verify_masked_projection(
            lhs, swapped, interpreter, names, kinds, 4, seed=1
        )
        assert failure is not None and not failure.ok
        assert "masked" in failure.detail
        # The identical pair sails through.
        assert _verify_masked_projection(
            lhs, lhs, interpreter, names, kinds, 4, seed=1
        ) is None


class TestRegistryFamilies:
    def test_known_specs_include_bundled_families(self):
        from repro.service.registry import KNOWN_SPECS

        for name in ("avx-like-w8", "masked-w16", "fusion-g3-w2"):
            assert name in KNOWN_SPECS

    def test_bootstraps_and_republishes_non_base_family(self, tmp_path):
        from repro.service.registry import ArtifactRegistry

        registry = ArtifactRegistry(tmp_path / "reg")
        entry = registry.entry_for("masked-w4")
        assert entry.spec.masked and entry.spec.vector_width == 4
        assert len(entry.compiler.ruleset) > 0
        # A second registry over the same root loads the published
        # artifact instead of re-generalizing.
        again = ArtifactRegistry(tmp_path / "reg")
        assert (
            again.entry_for("masked-w4").fingerprint == entry.fingerprint
        )

    def test_unknown_isa_still_rejected(self, tmp_path):
        from repro.service.registry import ArtifactRegistry, RegistryError

        registry = ArtifactRegistry(tmp_path / "reg")
        with pytest.raises(RegistryError, match="unknown ISA"):
            registry.spec_for("sve-w256")
