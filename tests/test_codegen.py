"""Unit tests for the C-with-intrinsics pretty printer."""

from repro.compiler.codegen import emit_c
from repro.compiler.lowering import lower_program
from repro.lang.parser import parse
from repro.machine.program import Instr, Program, ProgramBuilder


class TestEmitC:
    def test_vector_kernel_renders(self, spec):
        term = parse(
            "(List (VecAdd (Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3))"
            " (Vec 1 1 1 1)))"
        )
        program = lower_program(term, spec, {"x": 4})
        text = emit_c(program, name="inc4", arrays={"x": 4})
        assert text.startswith("void inc4(const float *x, float *out)")
        assert "vec_load(&x[0])" in text
        assert "vec_add(" in text
        assert "vec_store(&out[0]" in text
        assert text.rstrip().endswith("}")

    def test_scalar_ops_render_infix(self):
        b = ProgramBuilder()
        x = b.s_load("x", 0)
        y = b.s_load("x", 1)
        b.s_store("out", 0, b.s_op("+", x, y))
        b.s_store("out", 1, b.s_op("mac", x, x, y))
        b.halt()
        text = emit_c(b.build(), arrays={"x": 2})
        assert "s0 + s1" in text
        assert "s0 + s0 * s1" in text

    def test_control_flow_renders(self):
        b = ProgramBuilder()
        i = b.s_const(0)
        n = b.s_const(4)
        b.label("loop")
        b.s_op_into(i, "+", i, i)
        b.blt(i, n, "loop")
        b.jump("loop")
        b.bnez(i, "loop")
        b.halt()
        text = emit_c(b.build())
        assert "loop:" in text
        assert "goto loop;" in text
        assert "if (s0 < s1) goto loop;" in text
        assert "if (s0 != 0) goto loop;" in text

    def test_shuffle_and_insert_render(self):
        b = ProgramBuilder()
        v = b.v_load("x", 0)
        v2 = b.v_insert(v, 1, b.s_const(2.0))
        b.v_store("out", 0, b.v_shuffle(v2, v, (0, 1, 4, 5)))
        b.halt()
        text = emit_c(b.build(), arrays={"x": 4})
        assert "vec_insert(v0, 1, s0)" in text
        assert "vec_shuffle(v1, v0, {0, 1, 4, 5})" in text

    def test_unknown_opcode_becomes_comment(self):
        text = emit_c(Program([Instr("mystery")]))
        assert "/*" in text
