"""Property test: head-based and term-based cost agree everywhere."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.isa import fusion_g3_spec
from repro.lang import builders as B
from repro.lang.term import make
from repro.phases import CostModel

_MODEL = CostModel(fusion_g3_spec())


def cost_terms():
    leaves = st.one_of(
        st.integers(-3, 3).map(B.const),
        st.sampled_from(["a", "b"]).map(B.symbol),
        st.tuples(
            st.sampled_from(["x", "y"]), st.integers(0, 7)
        ).map(lambda p: B.get(*p)),
        st.sampled_from(["w0", "w1"]).map(B.wildcard),
    )

    def extend(children):
        scalar_ops = st.sampled_from(["+", "-", "*", "neg", "mac"])
        vec4 = st.builds(
            lambda a, b, c, d: B.vec(a, b, c, d),
            children, children, children, children,
        )
        return st.one_of(
            st.builds(
                lambda op, a, b: make(
                    op, a, b
                ) if op != "neg" else make(op, a),
                scalar_ops, children, children,
            ),
            vec4,
            st.builds(B.vec_add, children, children),
            st.builds(B.vec_mac, children, children, children),
        )

    return st.recursive(leaves, extend, max_leaves=8)


@given(cost_terms())
@settings(max_examples=120, deadline=None)
def test_node_cost_parities(term):
    try:
        via_terms = _MODEL.node_cost(term.op, term.payload, term.args)
    except KeyError:
        return
    heads = tuple((a.op, a.payload) for a in term.args)
    via_heads = _MODEL.node_cost_heads(term.op, term.payload, heads)
    assert abs(via_terms - via_heads) < 1e-12


@given(cost_terms())
@settings(max_examples=120, deadline=None)
def test_term_cost_positive_and_monotone(term):
    try:
        total = _MODEL.term_cost(term)
    except KeyError:
        return
    assert total > 0
    for arg in term.args:
        assert _MODEL.term_cost(arg) < total
