"""Unit tests for the operator registry."""

import pytest

from repro.lang.ops import (
    OpKind,
    Operator,
    OperatorRegistry,
    VARIADIC,
    default_registry,
)


class TestDefaultRegistry:
    def test_paper_fig1_operators_present(self):
        registry = default_registry()
        for name in (
            "+", "-", "*", "/", "neg", "sgn", "sqrt",
            "Vec", "Concat", "List",
            "VecAdd", "VecMinus", "VecMul", "VecDiv",
            "VecNeg", "VecSgn", "VecSqrt", "VecMAC",
        ):
            assert name in registry, name

    def test_counterpart_links(self):
        registry = default_registry()
        assert registry.scalar_counterpart("VecAdd") == "+"
        assert registry.vector_counterpart("+") == "VecAdd"
        assert registry.scalar_counterpart("VecMAC") == "mac"
        assert registry.vector_counterpart("sqrt") == "VecSqrt"
        assert registry.scalar_counterpart("+") is None
        assert registry.vector_counterpart("Vec") is None

    def test_variadic_structure_ops(self):
        registry = default_registry()
        assert registry["Vec"].is_variadic
        assert registry["List"].is_variadic
        assert registry["Vec"].arity == VARIADIC
        assert not registry["Concat"].is_variadic

    def test_kinds(self):
        registry = default_registry()
        assert registry["+"].kind is OpKind.SCALAR
        assert registry["VecAdd"].kind is OpKind.VECTOR
        assert registry["Vec"].kind is OpKind.STRUCTURE
        assert registry["Const"].kind is OpKind.LEAF

    def test_commutativity_flags(self):
        registry = default_registry()
        assert registry["+"].commutative
        assert registry["*"].commutative
        assert not registry["-"].commutative
        assert registry["VecAdd"].commutative


class TestRegistryMutation:
    def test_register_custom(self):
        registry = default_registry()
        custom = Operator("Frob", 2, OpKind.SCALAR)
        registry.register(custom)
        assert "Frob" in registry
        assert registry.get("Frob") is custom

    def test_conflicting_signature_rejected(self):
        registry = default_registry()
        with pytest.raises(ValueError):
            registry.register(Operator("+", 3, OpKind.SCALAR))

    def test_idempotent_register(self):
        registry = default_registry()
        op = registry["+"]
        registry.register(op)  # no error

    def test_copy_is_independent(self):
        registry = default_registry()
        clone = registry.copy()
        clone.register(Operator("New", 1, OpKind.SCALAR))
        assert "New" in clone
        assert "New" not in registry

    def test_scalar_and_vector_listings(self):
        registry = default_registry()
        scalars = {op.name for op in registry.scalar_ops()}
        vectors = {op.name for op in registry.vector_ops()}
        assert "+" in scalars and "VecAdd" in vectors
        assert not scalars & vectors
