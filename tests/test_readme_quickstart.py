"""README drift guard: the quickstart snippet runs as written.

Extracts the first ``python`` fenced block from README.md and
executes it verbatim, so editing the README into a broken state
fails CI (the satellite complaint this fixes: docs that promise
commands the code no longer honours).
"""

import re
from pathlib import Path

import pytest

from repro.core.pregen import DEFAULT_RULES_FILE

README = Path(__file__).resolve().parents[1] / "README.md"

needs_pregen = pytest.mark.skipif(
    not DEFAULT_RULES_FILE.exists(),
    reason="pregenerated rules not built",
)


def _python_blocks() -> list[str]:
    return re.findall(r"```python\n(.*?)```", README.read_text(), re.S)


def test_readme_has_a_python_quickstart():
    assert _python_blocks(), "README.md lost its python quickstart block"


@needs_pregen
def test_quickstart_block_executes(capsys):
    block = _python_blocks()[0]
    exec(compile(block, "README-quickstart", "exec"), {})
    out = capsys.readouterr().out
    assert "cycles" in out  # the snippet prints the simulator result
    assert "vec_" in out  # and the emitted intrinsics


def test_readme_example_commands_point_at_real_files():
    """Every `python examples/...` command in the README exists."""
    root = README.parent
    scripts = re.findall(r"python (examples/\S+\.py)", README.read_text())
    assert scripts, "README no longer lists example scripts"
    for script in scripts:
        assert (root / script).exists(), f"README references missing {script}"


def test_readme_module_commands_resolve():
    """Every `python -m repro...` command names an importable module."""
    import importlib.util

    modules = set(
        re.findall(r"python -m (repro(?:\.\w+)+)", README.read_text())
    )
    assert modules
    for name in modules:
        assert importlib.util.find_spec(name) is not None, (
            f"README references missing module {name}"
        )
