"""The cost-model calibration invariants DESIGN.md relies on.

These pin the properties that make the α/β phase split work (Fig. 8's
geometry); anyone retuning instruction costs will hit these tests
first.
"""

from repro.egraph.rewrite import parse_rewrite
from repro.phases import (
    aggregate_cost,
    cost_differential,
    default_params,
)


class TestClusterGeometryInvariants:
    def test_scalar_rule_band_at_or_above_beta(self, spec, cost_model):
        """Every plain scalar op pattern has CA at or above β.

        Binary/ternary scalar rules land strictly above; the 1-ary
        probes sit exactly at the boundary (a realistic scalar rule
        always carries more structure and clears it).
        """
        params = default_params(spec)
        for instr in spec.scalar_instructions():
            wilds = " ".join(f"?w{i}" for i in range(instr.arity))
            rule = parse_rewrite(
                "probe", f"({instr.name} {wilds}) => ?w0"
            )
            ca = aggregate_cost(cost_model, rule)
            if instr.arity >= 2:
                assert ca > params.beta, instr.name
            else:
                assert ca >= params.beta, instr.name

    def test_vector_rule_band_below_beta(self, spec, cost_model):
        """Single-op vector↔vector rules sit at or below β."""
        params = default_params(spec)
        for instr in spec.vector_instructions():
            wilds = [f"?w{i}" for i in range(instr.arity)]
            lhs = f"({instr.name} {' '.join(wilds)})"
            rhs = f"({instr.name} {' '.join(reversed(wilds))})"
            if lhs == rhs:
                continue
            rule = parse_rewrite("probe", f"{lhs} => {rhs}")
            assert aggregate_cost(cost_model, rule) <= params.beta, (
                instr.name
            )

    def test_scalar_simplifications_below_alpha(self, spec, cost_model):
        """No scalar↔scalar rule can cross the compilation threshold."""
        params = default_params(spec)
        worst = parse_rewrite(
            "neg-neg", "(neg (neg ?a)) => ?a"
        )  # erases two of the most expensive scalar ops
        assert cost_differential(cost_model, worst) <= params.alpha

    def test_lift_rules_far_above_alpha(self, spec, cost_model):
        params = default_params(spec)
        lift = parse_rewrite(
            "lift",
            "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3)) => "
            "(VecAdd (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))",
        )
        cd = cost_differential(cost_model, lift)
        assert cd > params.alpha * 10
        assert cd > 1000  # the Vec-literal cliff

    def test_vector_cheaper_than_scalar_per_op(self, spec):
        for vinstr in spec.vector_instructions():
            scalar = spec.instruction(vinstr.vector_of)
            # a vector op must beat even two scalar ops (it replaces
            # width of them)
            assert vinstr.base_cost * 2 < scalar.base_cost
