"""Harness tests that exercise the eqsat-compiler measurement path."""

from repro.bench.harness import measure_compiled, run_suite
from repro.compiler.diospyros import DiospyrosCompiler
from repro.kernels import matmul_kernel


class TestMeasureCompiled:
    def test_isaria_measurement(self, spec, isaria_compiler):
        instance = matmul_kernel(2, 2, 2)
        m = measure_compiled("isaria", isaria_compiler, instance)
        assert m.error is None
        assert m.correct
        assert m.compile_time > 0
        assert m.cycles > 0

    def test_diospyros_measurement(self, spec):
        compiler = DiospyrosCompiler(spec, max_rounds=2)
        instance = matmul_kernel(2, 2, 2)
        m = measure_compiled("diospyros", compiler, instance)
        assert m.error is None
        assert m.correct

    def test_suite_with_both_compilers(self, spec, isaria_compiler):
        rows = run_suite(
            [matmul_kernel(2, 2, 2)],
            spec,
            isaria=isaria_compiler,
            diospyros=DiospyrosCompiler(spec, max_rounds=2),
            systems=("scalar",),
        )
        row = rows[0]
        assert set(row.measurements) == {
            "scalar", "isaria", "diospyros",
        }
        assert row.speedup("isaria") is not None
        assert row.speedup("diospyros") is not None
        # both eqsat compilers must beat or match naive scalar here
        assert row.speedup("isaria") >= 1.0
