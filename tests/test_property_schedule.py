"""Property-based tests: the instruction scheduler never changes
program semantics, on randomly generated straight-line programs."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.isa import fusion_g3_spec
from repro.machine import Machine, ProgramBuilder, schedule_program

_SPEC = fusion_g3_spec()
_MACHINE = Machine(_SPEC)


@st.composite
def straight_line_programs(draw):
    """A random valid scalar/vector program over arrays x, y, out."""
    b = ProgramBuilder()
    scalar_regs = [b.s_load("x", draw(st.integers(0, 3)))]
    vector_regs = [b.v_load("y", 0)]
    n_ops = draw(st.integers(3, 18))
    n_stores = 0
    for _ in range(n_ops):
        kind = draw(st.sampled_from(
            ["s_op", "s_op", "v_op", "s_load", "v_insert", "store",
             "s_into"]
        ))
        if kind == "s_op":
            op = draw(st.sampled_from(["+", "-", "*", "mac"]))
            arity = 3 if op == "mac" else 2
            args = [
                draw(st.sampled_from(scalar_regs)) for _ in range(arity)
            ]
            scalar_regs.append(b.s_op(op, *args))
        elif kind == "s_into":
            op = draw(st.sampled_from(["+", "*"]))
            dst = draw(st.sampled_from(scalar_regs))
            src = draw(st.sampled_from(scalar_regs))
            b.s_op_into(dst, op, dst, src)
        elif kind == "v_op":
            op = draw(st.sampled_from(["VecAdd", "VecMul", "VecMinus"]))
            a = draw(st.sampled_from(vector_regs))
            c = draw(st.sampled_from(vector_regs))
            vector_regs.append(b.v_op(op, a, c))
        elif kind == "s_load":
            scalar_regs.append(b.s_load("x", draw(st.integers(0, 3))))
        elif kind == "v_insert":
            vec = draw(st.sampled_from(vector_regs))
            lane = draw(st.integers(0, 3))
            scalar = draw(st.sampled_from(scalar_regs))
            vector_regs.append(b.v_insert(vec, lane, scalar))
        else:  # store
            if n_stores < 4:
                if draw(st.booleans()):
                    b.s_store("out", n_stores,
                              draw(st.sampled_from(scalar_regs)))
                    n_stores += 1
                else:
                    b.v_store("out", 4,
                              draw(st.sampled_from(vector_regs)))
    # Always store something observable at the end.
    b.s_store("out", 0, scalar_regs[-1])
    b.v_store("out", 4, vector_regs[-1])
    b.halt()
    return b.build()


@given(straight_line_programs(), st.integers(0, 5))
@settings(max_examples=60, deadline=None)
def test_schedule_preserves_memory(program, seed):
    import random

    rng = random.Random(seed)
    memory = {
        "x": [rng.uniform(-4, 4) for _ in range(4)],
        "y": [rng.uniform(-4, 4) for _ in range(4)],
        "out": [0.0] * 8,
    }
    scheduled = schedule_program(program, _MACHINE)
    before = _MACHINE.run(program, dict(memory))
    after = _MACHINE.run(scheduled, dict(memory))
    assert before.array("out") == after.array("out")


@given(straight_line_programs())
@settings(max_examples=60, deadline=None)
def test_schedule_never_slower(program):
    memory = {"x": [1.0] * 4, "y": [1.0] * 4, "out": [0.0] * 8}
    scheduled = schedule_program(program, _MACHINE)
    before = _MACHINE.run(program, dict(memory))
    after = _MACHINE.run(scheduled, dict(memory))
    # List scheduling by critical path can in principle tie but should
    # never catastrophically regress; allow a tiny slack for unit
    # contention introduced by reordering.
    assert after.cycles <= before.cycles + 2
