"""Instantiation and saturation on deeper patterns."""

from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import Rewrite, apply_rewrite, parse_rewrite
from repro.egraph.runner import RunnerLimits, run_saturation
from repro.lang.parser import parse


class TestDeepInstantiation:
    def test_rhs_with_nested_new_structure(self):
        g = EGraph()
        root = g.add_term(parse("(* (Get x 0) 2)"))
        rule = parse_rewrite(
            "double-as-shifted-sum",
            "(* ?a 2) => (+ (+ ?a 0) (+ ?a 0))",
        )
        apply_rewrite(g, rule)
        g.rebuild()
        expected = parse("(+ (+ (Get x 0) 0) (+ (Get x 0) 0))")
        assert g.lookup_term(expected) == g.find(root)

    def test_rhs_shares_subterms(self):
        g = EGraph()
        g.add_term(parse("(+ (Get x 0) (Get x 0))"))
        rule = Rewrite(
            "fold", parse("(+ ?a ?a)"), parse("(* ?a 2)")
        )
        stats = apply_rewrite(g, rule)
        g.rebuild()
        assert stats.n_unions == 1
        assert g.lookup_term(parse("(* (Get x 0) 2)")) is not None


class TestLayeredRewrites:
    def test_rule_cascade_through_three_layers(self):
        g = EGraph()
        root = g.add_term(
            parse("(neg (neg (+ (* (Get x 0) 1) 0)))")
        )
        rules = [
            parse_rewrite("nn", "(neg (neg ?a)) => ?a"),
            parse_rewrite("m1", "(* ?a 1) => ?a"),
            parse_rewrite("a0", "(+ ?a 0) => ?a"),
        ]
        run_saturation(g, rules, RunnerLimits(max_iterations=6))
        assert g.lookup_term(parse("(Get x 0)")) == g.find(root)

    def test_vec_level_cascade(self):
        g = EGraph()
        root = g.add_term(
            parse(
                "(Vec (* (Get x 0) 1) (* (Get x 1) 1) "
                "(* (Get x 2) 1) (* (Get x 3) 1))"
            )
        )
        rules = [
            parse_rewrite(
                "lift-mul",
                "(Vec (* ?a0 ?b0) (* ?a1 ?b1) (* ?a2 ?b2) (* ?a3 ?b3))"
                " => (VecMul (Vec ?a0 ?a1 ?a2 ?a3) "
                "(Vec ?b0 ?b1 ?b2 ?b3))",
            ),
            parse_rewrite("m1", "(* ?a 1) => ?a"),
        ]
        run_saturation(g, rules, RunnerLimits(max_iterations=6))
        # both the load form and the lifted multiply coexist
        load_form = parse(
            "(Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3))"
        )
        lifted = parse(
            "(VecMul (Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3))"
            " (Vec 1 1 1 1))"
        )
        assert g.lookup_term(load_form) == g.find(root)
        assert g.lookup_term(lifted) == g.find(root)
