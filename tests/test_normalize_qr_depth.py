"""Normalization behaviour on the deep QR traces."""

import numpy as np

from repro.compiler.frontend import scalar_outputs
from repro.kernels import qr_kernel, run_reference


class TestQrNormalization:
    def test_outputs_preserve_reference(self, spec):
        instance = qr_kernel(3)
        interp = spec.interpreter()
        inputs = instance.make_inputs(11)
        env = {k: [float(x) for x in v] for k, v in inputs.items()}
        normalized = scalar_outputs(instance.program)
        raw = scalar_outputs(instance.program, source=True)
        want = run_reference(instance, inputs)
        for terms in (normalized, raw):
            got = [float(interp.evaluate(t, env)) for t in terms]
            assert np.allclose(got, want, rtol=1e-6), "trace mismatch"

    def test_no_negs_in_additive_positions(self):
        # After normalization, neg only survives as a whole-lane root
        # or under non-additive operators.
        from repro.lang.term import subterms

        instance = qr_kernel(3)
        for chunk in instance.program.term.args:
            for lane in chunk.args:
                for sub in subterms(lane):
                    if sub.op in ("+", "-"):
                        for arg in sub.args[:1]:
                            assert arg.op != "neg", sub

    def test_division_structure_intact(self):
        from repro.lang.pattern import contains_op

        instance = qr_kernel(3)
        assert contains_op(instance.program.term, "/")
        assert contains_op(instance.program.term, "sqrt")
