"""Exact rational-function verification (the division fragment)."""

from fractions import Fraction

from repro.lang.parser import parse
from repro.ruler.verify import (
    rational_of,
    rationals_equal,
    verify_rule,
)


class TestRationalNormalForm:
    def test_atom(self, spec):
        num, den = rational_of(parse("?a"), spec)
        assert num == {("a",): Fraction(1)}
        assert den == {(): Fraction(1)}

    def test_division(self, spec):
        pair = rational_of(parse("(/ ?a ?b)"), spec)
        assert pair is not None
        num, den = pair
        assert num == {("a",): Fraction(1)}
        assert den == {("b",): Fraction(1)}

    def test_sum_of_fractions(self, spec):
        # a/b + c/d = (ad + cb) / bd
        pair = rational_of(parse("(+ (/ ?a ?b) (/ ?c ?d))"), spec)
        assert pair is not None
        num, den = pair
        assert den == {("b", "d"): Fraction(1)}
        assert num == {
            ("a", "d"): Fraction(1),
            ("b", "c"): Fraction(1),
        }

    def test_out_of_fragment(self, spec):
        assert rational_of(parse("(sqrt ?a)"), spec) is None
        assert rational_of(parse("(/ ?a (sgn ?b))"), spec) is None


class TestRationalsEqual:
    def test_div_mul_cancellation(self, spec):
        a = rational_of(parse("(/ (* ?a ?b) ?b)"), spec)
        b = rational_of(parse("?a"), spec)
        assert rationals_equal(a, b) is True

    def test_distinct_functions(self, spec):
        a = rational_of(parse("(/ ?a ?b)"), spec)
        b = rational_of(parse("(/ ?b ?a)"), spec)
        assert rationals_equal(a, b) is False


class TestVerifyWithRationals:
    def test_sound_division_rule_is_exact(self, spec):
        # (a/b)/c == a/(b*c) wherever both are defined, and their
        # undefinedness patterns agree.
        result = verify_rule(
            parse("(/ (/ ?a ?b) ?c)"),
            parse("(/ ?a (* ?b ?c))"),
            spec,
        )
        assert result.ok
        assert result.method == "exact"

    def test_definedness_mismatch_still_rejected(self, spec):
        # (a*b)/b == a algebraically but is undefined at b=0: the
        # rational check passes and the definedness fuzz must reject.
        result = verify_rule(
            parse("(/ (* ?a ?b) ?b)"), parse("?a"), spec
        )
        assert not result.ok
        assert "definedness" in result.detail

    def test_unsound_division_rule_exactly_rejected(self, spec):
        result = verify_rule(
            parse("(/ ?a ?b)"), parse("(/ ?b ?a)"), spec
        )
        assert not result.ok
        assert result.method == "exact"

    def test_div_by_one_exact(self, spec):
        result = verify_rule(parse("(/ ?a 1)"), parse("?a"), spec)
        assert result.ok
        assert result.method == "exact"
