"""Execution-trace recording tests."""

import pytest

from repro.machine import Machine, ProgramBuilder


@pytest.fixture(scope="module")
def machine(spec):
    return Machine(spec)


def small_program():
    b = ProgramBuilder()
    x = b.s_load("x", 0)
    y = b.s_load("x", 1)
    b.s_store("out", 0, b.s_op("+", x, y))
    b.halt()
    return b.build()


class TestTrace:
    def test_disabled_by_default(self, machine):
        result = machine.run(small_program(), {"x": [1, 2], "out": [0]})
        assert result.trace is None
        with pytest.raises(ValueError):
            result.format_trace()

    def test_records_issue_cycles(self, machine):
        result = machine.run(
            small_program(), {"x": [1, 2], "out": [0]}, trace=True
        )
        assert result.trace is not None
        assert len(result.trace) == result.n_instructions
        cycles = [c for c, _ in result.trace]
        assert cycles == sorted(cycles)  # in-order issue

    def test_format_trace(self, machine):
        result = machine.run(
            small_program(), {"x": [1, 2], "out": [0]}, trace=True
        )
        text = result.format_trace()
        assert "s.load" in text
        assert "s.op" in text

    def test_format_trace_limit(self, machine):
        result = machine.run(
            small_program(), {"x": [1, 2], "out": [0]}, trace=True
        )
        text = result.format_trace(limit=2)
        assert "more)" in text

    def test_trace_shows_dual_issue(self, machine):
        # somewhere in a mixed program, two instructions share a cycle
        b = ProgramBuilder()
        s = b.s_const(1.0)
        v = b.v_const((1.0,) * 4)
        for _ in range(4):
            s = b.s_op("+", s, s)
            v = b.v_op("VecAdd", v, v)
        b.halt()
        result = machine.run(b.build(), {}, trace=True)
        cycles = [c for c, _ in result.trace]
        assert len(cycles) != len(set(cycles)), "no dual issue observed"
