"""More framework-driver coverage."""

import pytest

from repro.core import IsariaFramework
from repro.isa import customized_spec
from repro.kernels import matmul_kernel
from repro.phases import PhaseParams
from repro.ruler import SynthesisConfig


class TestFrameworkConstruction:
    def test_defaults(self, spec):
        framework = IsariaFramework(spec)
        assert framework.spec is spec
        assert framework.synthesis_config.max_term_size == 4
        assert framework.phase_params.alpha > framework.phase_params.beta

    def test_explicit_params_respected(self, spec):
        params = PhaseParams(alpha=99.0, beta=7.0)
        framework = IsariaFramework(spec, phase_params=params)
        assert framework.phase_params is params

    def test_generated_compiler_carries_synthesis(self, spec):
        framework = IsariaFramework(
            spec, synthesis_config=SynthesisConfig(max_term_size=3)
        )
        compiler = framework.generate_compiler()
        assert compiler.synthesis is not None
        assert compiler.synthesis.rules
        assert len(compiler.ruleset) == len(compiler.synthesis.rules)

    def test_customized_spec_generates_compiler(self, spec):
        custom = customized_spec(spec, mulsub=True)
        framework = IsariaFramework(
            custom, synthesis_config=SynthesisConfig(max_term_size=3)
        )
        compiler = framework.generate_compiler()
        # the lane generalizer emits the canonical lift for the custom
        # vector op even at tiny synthesis sizes
        lift_targets = {
            r.rhs.op
            for r in compiler.ruleset.compilation
            if r.lhs.op == "Vec"
        }
        assert "VecMulSub" in lift_targets


class TestValidation:
    def test_validate_accepts_equivalent(self, isaria_compiler):
        instance = matmul_kernel(2, 2, 2)
        compiled = isaria_compiler.compile_kernel(instance)
        isaria_compiler.validate_equivalence(
            instance.program.term, compiled.compiled_term
        )

    def test_compile_kernel_validate_flag(self, isaria_compiler):
        instance = matmul_kernel(2, 2, 2)
        kernel = isaria_compiler.compile_kernel(
            instance, validate=False
        )
        assert kernel.machine_program.instrs

    def test_compile_accepts_kernel_program(self, isaria_compiler):
        instance = matmul_kernel(2, 2, 2)
        kernel = isaria_compiler.compile_kernel(instance.program)
        assert kernel.name == instance.program.name


class TestCSource:
    def test_c_source_names_sanitized(self, isaria_compiler):
        from repro.compiler.frontend import trace_kernel

        program = trace_kernel(
            "my-kernel", lambda x: [x[0]], {"x": 4}, 4
        )
        kernel = isaria_compiler.compile_kernel(program)
        assert "void my_kernel(" in kernel.c_source()
