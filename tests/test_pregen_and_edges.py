"""Pregen compiler overrides and miscellaneous API edge cases."""

import pytest

from repro.core.pregen import DEFAULT_RULES_FILE, default_compiler
from repro.egraph.egraph import EGraph
from repro.lang.parser import parse

needs_pregen = pytest.mark.skipif(
    not DEFAULT_RULES_FILE.exists(),
    reason="pregenerated rules not built",
)


@needs_pregen
class TestDefaultCompilerOverrides:
    def test_custom_phase_params(self, spec):
        from repro.phases import PhaseParams

        compiler = default_compiler(
            spec, phase_params=PhaseParams(alpha=10**9, beta=10**9)
        )
        # degenerate thresholds: everything lands in optimization
        assert len(compiler.ruleset.expansion) == 0
        assert len(compiler.ruleset.compilation) == 0

    def test_custom_compile_options(self, spec):
        from repro.compiler.compile import CompileOptions

        options = CompileOptions(max_rounds=1)
        compiler = default_compiler(spec, compile_options=options)
        assert compiler.options.max_rounds == 1

    def test_missing_rules_file_raises(self, tmp_path):
        from repro.core.pregen import load_pregenerated_rules

        with pytest.raises(FileNotFoundError):
            load_pregenerated_rules(tmp_path / "nope.txt")


class TestEGraphEdges:
    def test_add_instantiation_missing_binding(self):
        g = EGraph()
        real = g.add_term(parse("1"))
        with pytest.raises(KeyError):
            g.add_instantiation(parse("(+ ?a ?b)"), {"a": real})

    def test_lookup_term_on_empty_graph(self):
        g = EGraph()
        assert g.lookup_term(parse("(+ 1 2)")) is None

    def test_eclass_accessor_follows_unions(self):
        g = EGraph()
        a = g.add_term(parse("1"))
        b = g.add_term(parse("2"))
        g.union(a, b)
        g.rebuild()
        assert g.eclass(a) is g.eclass(b)

    def test_canonicalize_is_stable_on_clean_graph(self):
        g = EGraph()
        g.add_term(parse("(+ (Get x 0) (Get y 0))"))
        g.rebuild()
        for eclass in g.classes():
            for node in eclass.nodes:
                assert g.canonicalize(node) == node


class TestCacheFingerprintEdges:
    def test_allowlist_changes_fingerprint(self, spec):
        from repro.core.cache import spec_fingerprint
        from repro.ruler import SynthesisConfig

        base = SynthesisConfig(max_term_size=4)
        focused = SynthesisConfig(
            max_term_size=4, op_allowlist=("+", "-")
        )
        assert spec_fingerprint(spec, base) != spec_fingerprint(
            spec, focused
        )

    def test_minimize_flag_changes_fingerprint(self, spec):
        from repro.core.cache import spec_fingerprint
        from repro.ruler import SynthesisConfig

        a = SynthesisConfig(max_term_size=4, minimize=True)
        b = SynthesisConfig(max_term_size=4, minimize=False)
        assert spec_fingerprint(spec, a) != spec_fingerprint(spec, b)
