"""node_cost vs node_cost_heads parity on the cost model."""

import pytest

from repro.lang.parser import parse


CASES = [
    "(+ ?a ?b)",
    "(Vec ?a ?b ?c ?d)",
    "(Vec 1 2 3 4)",
    "(Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3))",
    "(Vec (Get x 0) (Get x 2) (Get x 1) (Get x 3))",
    "(Vec (Get x 0) (Get y 1) (Get x 2) (Get y 3))",
    "(Vec (+ ?a ?b) ?c ?d ?e)",
    "(Vec (+ ?a ?b) (+ ?c ?d) (+ ?e ?f) (+ ?g ?h))",
    "(VecMAC ?a ?b ?c)",
    "(Concat ?a ?b)",
    "(List ?a ?b)",
    "(sqrt ?a)",
]


@pytest.mark.parametrize("text", CASES)
def test_heads_agree_with_terms(cost_model, text):
    term = parse(text)
    via_terms = cost_model.node_cost(term.op, term.payload, term.args)
    heads = tuple((a.op, a.payload) for a in term.args)
    via_heads = cost_model.node_cost_heads(term.op, term.payload, heads)
    assert via_terms == pytest.approx(via_heads), text


def test_unknown_op_raises_in_both(cost_model):
    with pytest.raises(KeyError):
        cost_model.node_cost("Mystery", None, ())
    with pytest.raises(KeyError):
        cost_model.node_cost_heads("Mystery", None, ())


def test_custom_instruction_costs(spec):
    from repro.isa import customized_spec
    from repro.phases import CostModel

    custom = customized_spec(spec, sqrtsgn=True, mulsub=True)
    model = CostModel(custom)
    assert model.node_cost("VecSqrtSgn", None, ()) == 3.0
    assert model.node_cost("sqrtsgn", None, ()) == 14.0
    assert model.node_cost("VecMulSub", None, ()) == 1.0
    # and the full term cost composes
    term = parse("(VecSqrtSgn (Vec 1 1 1 1) (Vec 2 2 2 2))")
    assert model.term_cost(term) > 3.0
