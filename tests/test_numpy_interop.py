"""numpy interoperability: kernels and machine accept numpy values."""

import numpy as np

from repro.baselines import compile_scalar
from repro.kernels import matmul_kernel, padded_memory, run_reference
from repro.machine import Machine


class TestNumpyInputs:
    def test_machine_accepts_numpy_arrays(self, spec):
        instance = matmul_kernel(2, 2, 2)
        program = compile_scalar(instance.program, spec)
        inputs = {
            "A": np.array([1.0, 2.0, 3.0, 4.0]),
            "B": np.array([5.0, 6.0, 7.0, 8.0]),
        }
        memory = padded_memory(instance, inputs)
        result = Machine(spec).run(program, memory)
        assert result.array("out")[:4] == [19.0, 22.0, 43.0, 50.0]

    def test_reference_accepts_lists_and_arrays(self):
        instance = matmul_kernel(2, 2, 2)
        as_list = run_reference(
            instance, {"A": [1, 0, 0, 1], "B": [2, 3, 4, 5]}
        )
        as_array = run_reference(
            instance,
            {"A": np.eye(2).ravel(), "B": np.array([2.0, 3, 4, 5])},
        )
        assert np.allclose(as_list, as_array)

    def test_float32_inputs_coerced(self, spec):
        instance = matmul_kernel(2, 2, 2)
        program = compile_scalar(instance.program, spec)
        inputs = {
            "A": np.ones(4, dtype=np.float32),
            "B": np.ones(4, dtype=np.float32),
        }
        memory = padded_memory(instance, inputs)
        result = Machine(spec).run(program, memory)
        assert result.array("out")[:4] == [2.0, 2.0, 2.0, 2.0]

    def test_interpreter_accepts_numpy_scalars(self, spec):
        from repro.lang.parser import parse

        interp = spec.interpreter()
        env = {"a": np.float64(2.0), "b": np.float64(3.0)}
        assert float(interp.evaluate(parse("(+ a b)"), env)) == 5.0
