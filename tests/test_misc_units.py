"""Assorted small-unit coverage."""

from repro.bench.harness import Measurement, SuiteRow
from repro.lang.parser import parse
from repro.phases.cost import check_strict_monotonicity


class TestSuiteRowEdges:
    def test_speedup_none_when_missing(self):
        row = SuiteRow(key="k", family="F")
        assert row.speedup("isaria") is None

    def test_speedup_none_on_zero_cycles(self):
        row = SuiteRow(key="k", family="F")
        row.measurements["scalar"] = Measurement("scalar", 100, True)
        row.measurements["isaria"] = Measurement("isaria", 0, True)
        assert row.speedup("isaria") is None

    def test_errored_measurement_has_no_cycles(self):
        row = SuiteRow(key="k", family="F")
        row.measurements["nature"] = Measurement(
            "nature", 123, False, error="boom"
        )
        assert row.cycles("nature") is None


class TestMonotonicityChecker:
    class _BrokenModel:
        """A cost model that violates Definition 2 on purpose."""

        def term_cost(self, term):
            # every term costs 1: children never strictly cheaper
            return 1.0

    def test_flags_violations(self):
        violations = check_strict_monotonicity(
            self._BrokenModel(), [parse("(+ a b)")]
        )
        assert len(violations) == 2  # both children flagged

    def test_clean_model_no_violations(self, cost_model):
        assert (
            check_strict_monotonicity(cost_model, [parse("(+ a b)")])
            == []
        )


class TestMeasurementDefaults:
    def test_fields(self):
        m = Measurement("scalar", 10, True)
        assert m.compile_time == 0.0
        assert m.n_instructions == 0
        assert m.error is None
