"""Builder helper coverage."""

import pytest

from repro.lang import builders as B
from repro.lang.parser import parse


class TestBuilders:
    def test_every_vector_builder(self):
        a, b, c = B.symbol("a"), B.symbol("b"), B.symbol("c")
        assert B.vec_add(a, b).op == "VecAdd"
        assert B.vec_minus(a, b).op == "VecMinus"
        assert B.vec_mul(a, b).op == "VecMul"
        assert B.vec_div(a, b).op == "VecDiv"
        assert B.vec_neg(a).op == "VecNeg"
        assert B.vec_sgn(a).op == "VecSgn"
        assert B.vec_sqrt(a).op == "VecSqrt"
        assert B.vec_mac(c, a, b).op == "VecMAC"
        assert B.concat(B.vec(a, b), B.vec(b, c)).op == "Concat"

    def test_prog_builds_list(self):
        program = B.prog(B.vec(B.const(1), B.const(2)))
        assert program.op == "List"
        assert len(program.args) == 1

    def test_sum_terms_left_associates(self):
        terms = [B.symbol(n) for n in "abc"]
        assert B.sum_terms(terms) == parse("(+ (+ a b) c)")
        assert B.sum_terms(terms[:1]) == terms[0]
        with pytest.raises(ValueError):
            B.sum_terms([])

    def test_dot_product(self):
        xs = [B.get("x", i) for i in range(2)]
        ys = [B.get("y", i) for i in range(2)]
        assert B.dot_product(xs, ys) == parse(
            "(+ (* (Get x 0) (Get y 0)) (* (Get x 1) (Get y 1)))"
        )
        with pytest.raises(ValueError):
            B.dot_product(xs, ys[:1])
        with pytest.raises(ValueError):
            B.dot_product([], [])

    def test_scalar_builders_compose(self):
        expr = B.mac(
            B.div(B.symbol("a"), B.const(2)),
            B.sgn(B.symbol("b")),
            B.sqrt(B.symbol("c")),
        )
        assert expr == parse("(mac (/ a 2) (sgn b) (sqrt c))")
