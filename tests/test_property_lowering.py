"""Property-based lowering tests: machine execution agrees with the
interpreter on randomly generated vector programs."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.compiler.lowering import lower_program
from repro.isa import fusion_g3_spec
from repro.lang import builders as B
from repro.machine import Machine, schedule_program

_SPEC = fusion_g3_spec()
_MACHINE = Machine(_SPEC)
_INTERP = _SPEC.interpreter()


def scalar_exprs():
    leaves = st.one_of(
        st.integers(-3, 3).map(B.const),
        st.tuples(
            st.sampled_from(["x", "y"]), st.integers(0, 3)
        ).map(lambda p: B.get(*p)),
    )

    def extend(children):
        return st.one_of(
            st.builds(B.add, children, children),
            st.builds(B.mul, children, children),
            st.builds(B.sub, children, children),
            st.builds(B.mac, children, children, children),
        )

    return st.recursive(leaves, extend, max_leaves=6)


def vector_exprs():
    literal = st.lists(
        scalar_exprs(), min_size=4, max_size=4
    ).map(lambda lanes: B.vec(*lanes))

    def extend(children):
        return st.one_of(
            st.builds(B.vec_add, children, children),
            st.builds(B.vec_mul, children, children),
            st.builds(B.vec_minus, children, children),
            st.builds(B.vec_neg, children),
            st.builds(B.vec_mac, children, children, children),
        )

    return st.recursive(literal, extend, max_leaves=4)


@given(vector_exprs(), st.integers(0, 4))
@settings(max_examples=60, deadline=None)
def test_machine_agrees_with_interpreter(vec_expr, seed):
    import random

    rng = random.Random(seed)
    env = {
        "x": [rng.randint(-3, 3) for _ in range(4)],
        "y": [rng.randint(-3, 3) for _ in range(4)],
    }
    program = B.prog(vec_expr)
    machine_prog = lower_program(
        program, _SPEC, {"x": 4, "y": 4}
    )
    machine_prog = schedule_program(machine_prog, _MACHINE)
    memory = {
        "x": [float(v) for v in env["x"]],
        "y": [float(v) for v in env["y"]],
        "out": [0.0] * 4,
    }
    result = _MACHINE.run(machine_prog, memory)
    expected = _INTERP.evaluate(program, env)[0]
    got = result.array("out")
    assert all(
        abs(g - float(e)) < 1e-6 for g, e in zip(got, expected)
    ), (got, expected)
