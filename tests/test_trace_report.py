"""The trace-report CLI renders timelines from JSONL traces."""

import json

import pytest

from repro.tools.trace_report import (
    hottest_rules,
    isa_rollup,
    load_events,
    main,
    minimize_rollup,
    phase_rollup,
    render_report,
    scheduling_rollup,
    service_rollup,
    synthesis_rollup,
    timeline_table,
)


def _synthetic_events():
    return [
        {"name": "eqsat.iteration", "id": 2, "parent": 1, "ts": 10.01,
         "dur": 0.05, "attrs": {"index": 0, "n_unions": 3}},
        {"name": "eqsat", "id": 1, "parent": 0, "ts": 10.0, "dur": 0.2,
         "attrs": {"stop_reason": "saturated",
                   "rule_match_time": {"lift-a": 0.15, "comm": 0.01},
                   "rule_node_visits": {"lift-a": 900, "comm": 40}}},
        {"name": "compile", "id": 0, "ts": 9.9, "dur": 0.5,
         "attrs": {"final_cost": 15.0}},
    ]


class TestRendering:
    def test_timeline_orders_and_indents(self):
        table = timeline_table(_synthetic_events())
        lines = table.splitlines()
        # Start order: compile (9.9) before eqsat (10.0) before iteration.
        names = [line.split("  ")[-1] for line in lines[2:]]
        assert "compile" in lines[2]
        assert "  eqsat" in lines[3]
        assert "    eqsat.iteration" in lines[4]
        # Offsets are relative to trace start.
        assert lines[2].lstrip().startswith("0.0ms")

    def test_timeline_max_depth_hides_detail(self):
        table = timeline_table(_synthetic_events(), max_depth=1)
        assert "eqsat" in table
        assert "eqsat.iteration" not in table

    def test_timeline_notes_skip_noisy_keys(self):
        table = timeline_table(_synthetic_events())
        assert "stop_reason=saturated" in table
        assert "rule_match_time" not in table

    def test_dangling_parent_treated_as_root(self):
        table = timeline_table(
            [{"name": "orphan", "id": 7, "parent": 99, "ts": 1.0,
              "dur": 0.1}]
        )
        assert "orphan" in table

    def test_empty_trace(self):
        assert timeline_table([]) == "(empty trace)"

    def test_rollup_aggregates_by_name(self):
        rollup = phase_rollup(_synthetic_events() + _synthetic_events())
        line = next(
            l for l in rollup.splitlines() if l.endswith("  eqsat")
        )
        assert "     2  " in line  # two calls

    def test_hottest_rules_sorted_by_match_time(self):
        out = hottest_rules(_synthetic_events(), top=10)
        lines = out.splitlines()
        assert lines[2].endswith("lift-a")
        assert lines[3].endswith("comm")
        assert "900" in lines[2]

    def test_hottest_rules_top_n(self):
        out = hottest_rules(_synthetic_events(), top=1)
        assert "lift-a" in out
        assert "comm" not in out

    def test_hottest_rules_without_counters(self):
        assert "no rule-level counters" in hottest_rules(
            [{"name": "lower", "id": 0, "ts": 1.0, "dur": 0.1}]
        )

    def test_render_report_has_all_sections(self):
        report = render_report(_synthetic_events())
        assert "== timeline ==" in report
        assert "== per-phase rollup ==" in report
        assert "== service ==" in report
        assert "== isa ==" in report
        assert "== synthesis ==" in report
        assert "== minimize ==" in report
        assert "hottest rules" in report
        assert "== scheduling ==" in report


class TestIsaRollup:
    def _run(self, isa, width, cycles, issued, active, masked, vector):
        return {
            "name": "machine.run", "dur": 0.0,
            "attrs": {
                "isa": isa, "width": width, "cycles": cycles,
                "lanes_issued": issued, "lanes_active": active,
                "masked_ops": masked, "vector_ops": vector,
            },
        }

    def test_groups_by_family_across_widths(self):
        report = isa_rollup([
            self._run("masked-w8", 8, 10, 16, 11, 2, 4),
            self._run("masked-w16", 16, 8, 32, 27, 2, 4),
            self._run("fusion-g3", 4, 20, 8, 8, 0, 2),
        ])
        lines = report.splitlines()
        masked_line = next(l for l in lines if "masked (" in l)
        assert "8,16" in masked_line
        # 38 active over 48 issued lanes across both masked runs.
        assert f"{38 / 48:.3f}" in masked_line
        fusion_line = next(l for l in lines if "fusion-g3" in l)
        assert "1.000" in fusion_line

    def test_masked_share_column(self):
        report = isa_rollup([self._run("masked-w8", 8, 10, 16, 11, 2, 4)])
        assert "50.0%" in report

    def test_placeholder_without_machine_runs(self):
        assert "no machine.run" in isa_rollup(_synthetic_events())


class TestSchedulingRollup:
    def test_ranks_by_match_time_share_and_flags_zero_merges(self):
        events = [
            {"name": "eqsat", "id": 1, "ts": 1.0, "dur": 0.2,
             "attrs": {
                 "rule_match_time": {"dead": 0.6, "live": 0.2},
                 "rule_unions": {"live": 5},
             }},
        ]
        out = scheduling_rollup(events)
        lines = out.splitlines()
        assert "dead" in lines[2] and "75.0%" in lines[2]
        assert "zero merges" in lines[2]
        assert "live" in lines[3] and "zero merges" not in lines[3]
        assert "disable candidates" in out and "dead" in out

    def test_reconstructs_merges_from_legacy_applied_maps(self):
        events = [
            {"name": "eqsat", "id": 1, "ts": 1.0, "dur": 0.2,
             "attrs": {"rule_match_time": {"comm": 0.1}}},
            {"name": "eqsat.iteration", "id": 2, "parent": 1, "ts": 1.0,
             "dur": 0.1, "attrs": {"applied": {"comm": 4}}},
        ]
        out = scheduling_rollup(events)
        assert "zero merges" not in out
        assert "disable candidates" not in out

    def test_placeholder_without_counters(self):
        assert "no rule-level counters" in scheduling_rollup(
            [{"name": "lower", "id": 0, "ts": 1.0, "dur": 0.1}]
        )


def _service_events():
    return [
        {"name": "service.request", "id": 1, "ts": 1.0, "dur": 2.0,
         "attrs": {"kernel": "qprod", "cache_hit": False,
                   "deduped": False, "queue_s": 0.02}},
        {"name": "service.request", "id": 2, "ts": 1.1, "dur": 2.0,
         "attrs": {"kernel": "qprod", "cache_hit": False,
                   "deduped": True, "queue_s": 0.0}},
        {"name": "service.request", "id": 3, "ts": 3.5, "dur": 0.001,
         "attrs": {"kernel": "qprod", "cache_hit": True,
                   "deduped": False, "queue_s": 0.0}},
        {"name": "service.request", "id": 4, "ts": 3.6, "dur": 0.001,
         "attrs": {"kernel": "dot-8", "cache_hit": True,
                   "deduped": False, "queue_s": 0.0}},
        {"name": "service.batch", "id": 5, "ts": 1.05, "dur": 1.9,
         "attrs": {"n_kernels": 3, "isa": "fusion-g3"}},
    ]


class TestServiceRollup:
    def test_rates_and_queue_wait(self):
        out = service_rollup(_service_events())
        assert "requests: 4 (2 cache hits, 1 deduped, 1 compiled)" in out
        assert "cache hit rate: 50.0%" in out
        assert "dedupe rate: 25.0%" in out
        # Queue wait: 0.02s over 4 requests = 5ms avg, 20ms max.
        assert "5.0ms avg, 20.0ms max" in out

    def test_batch_sizes(self):
        out = service_rollup(_service_events())
        assert "batches: 1 (3.0 kernels avg, 3 max" in out

    def test_placeholder_without_service_records(self):
        assert "no service records" in service_rollup(_synthetic_events())

    def test_aggregates_across_traces(self):
        out = service_rollup(_service_events() + _service_events())
        assert "requests: 8" in out
        assert "cache hit rate: 50.0%" in out


def _synthesis_events():
    return [
        {"name": "synthesize", "id": 0, "ts": 1.0, "dur": 3.0,
         "attrs": {"n_rules": 42, "cvec_backend": "batched"}},
        {"name": "synthesize.enumerate", "id": 1, "parent": 0,
         "ts": 1.0, "dur": 1.5,
         "attrs": {"cvec_backend": "batched", "shards": 4,
                   "size_times": {"1": 0.001, "2": 0.01, "3": 0.4},
                   "size_terms": {"1": 5, "2": 30, "3": 260},
                   "size_new": {"1": 5, "2": 10, "3": 58}}},
        {"name": "synthesize.verify", "id": 2, "parent": 0,
         "ts": 2.5, "dur": 0.8,
         "attrs": {"n_verified": 80, "batched_terms": 160,
                   "legacy_terms": 2}},
        {"name": "synthesize.minimize", "id": 3, "parent": 0,
         "ts": 3.3, "dur": 0.5, "attrs": {"n_screened": 3}},
    ]


class TestSynthesisRollup:
    def test_per_size_table_and_counters(self):
        out = synthesis_rollup(_synthesis_events())
        lines = out.splitlines()
        assert lines[0] == "cvec backend: batched (shards: 4)"
        # One row per size, in numeric order, with terms and new counts.
        size3 = next(l for l in lines if l.lstrip().startswith("3"))
        assert "400.0ms" in size3 and "260" in size3 and "58" in size3
        assert lines.index(size3) > lines.index(
            next(l for l in lines if l.lstrip().startswith("2"))
        )
        assert "verify sides: 160 batched, 2 legacy" in out
        assert "minimize screened: 3" in out

    def test_aggregates_across_runs(self):
        out = synthesis_rollup(_synthesis_events() + _synthesis_events())
        assert "verify sides: 320 batched, 4 legacy" in out
        size3 = next(
            l for l in out.splitlines() if l.lstrip().startswith("3")
        )
        assert "800.0ms" in size3 and "520" in size3

    def test_placeholder_without_synthesis_spans(self):
        assert "no synthesis spans" in synthesis_rollup(
            _synthetic_events()
        )

    def test_traced_synthesis_round_trips(self, tmp_path, monkeypatch):
        """A real traced synthesize_rules renders a populated section."""
        from repro.isa import fusion_g3_spec
        from repro.ruler import SynthesisConfig, synthesize_rules

        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        synthesize_rules(
            fusion_g3_spec(),
            SynthesisConfig(max_term_size=2, minimize=False),
        )
        monkeypatch.delenv("REPRO_TRACE")
        out = synthesis_rollup(load_events(path))
        assert "cvec backend: batched" in out
        assert "verify sides:" in out
        # Sizes 1 and 2 both enumerated something.
        assert any(l.lstrip().startswith("1 ") for l in out.splitlines())


class TestLoading:
    def test_load_events_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"name": "a", "id": 0, "ts": 1.0, "dur": 0.1}\n\n')
        assert len(load_events(path)) == 1

    def test_load_events_rejects_garbage_with_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"name": "a", "id": 0, "ts": 1, "dur": 0}\nnope\n')
        with pytest.raises(ValueError, match=":2:"):
            load_events(path)


class TestCli:
    def test_main_renders_file(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        path.write_text(
            "\n".join(json.dumps(e) for e in _synthetic_events()) + "\n"
        )
        assert main([str(path), "--top", "2", "--max-depth", "1"]) == 0
        out = capsys.readouterr().out
        assert "== timeline ==" in out
        assert "lift-a" in out

    def test_main_missing_file_is_an_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err


class TestEndToEnd:
    def test_traced_saturation_round_trips_through_cli(
        self, tmp_path, monkeypatch, capsys
    ):
        """REPRO_TRACE=file → JSONL → trace_report, no mocks."""
        from repro.egraph.egraph import EGraph
        from repro.egraph.rewrite import parse_rewrite
        from repro.egraph.runner import run_saturation
        from repro.lang.parser import parse

        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        egraph = EGraph()
        egraph.add_term(parse("(+ a (* b c))"))
        run_saturation(
            egraph,
            [parse_rewrite("comm-add", "(+ ?a ?b) => (+ ?b ?a)")],
        )
        monkeypatch.delenv("REPRO_TRACE")
        assert path.exists()
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "eqsat" in out
        assert "comm-add" in out  # rule-level counters made it through


class TestMinimizeRollup:
    def _events(self):
        return [
            {"name": "synthesize.cost_prune", "dur": 0.2,
             "attrs": {"n_in": 184, "n_kept": 97, "n_dominated": 87,
                       "n_rescued": 17}},
            {"name": "synthesize.cost_prune", "dur": 0.1,
             "attrs": {"n_in": 84, "n_kept": 73, "n_dominated": 11,
                       "n_rescued": 2}},
            {"name": "synthesize.minimize", "dur": 0.5,
             "attrs": {"n_in": 97, "n_kept": 60, "n_screened": 4}},
        ]

    def test_aggregates_prune_and_shrink_spans(self):
        rollup = minimize_rollup(self._events())
        assert "cost prune: 268 -> 170 rules" in rollup
        assert "98 dominated" in rollup
        assert "19 rescued" in rollup
        assert "derivability shrink: 97 -> 60 rules" in rollup
        assert "4 screened unsound" in rollup

    def test_empty_trace_notes_absence(self):
        assert "no minimization spans" in minimize_rollup([])
        assert "no minimization spans" in minimize_rollup(
            [{"name": "compile", "attrs": {}}]
        )
