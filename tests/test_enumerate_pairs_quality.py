"""Quality of enumeration pairs: the raw material of synthesis."""

from repro.lang.parser import parse
from repro.ruler.cvec import CvecSpec
from repro.ruler.enumerate import enumerate_terms


class TestDiscoveredEquivalences:
    def test_commuted_pairs_found(self, spec):
        grid = CvecSpec.make(("a", "b"), n_random=16, seed=0)
        result = enumerate_terms(spec, grid, max_size=3)
        pair_texts = {
            (str(a), str(b)) for a, b in result.pairs
        }
        flat = {t for pair in pair_texts for t in pair}
        assert "Term((+ b a))" in flat or "Term((+ a b))" in flat

    def test_single_lane_bridges_found(self, spec):
        # (+ a b) and 1-lane (VecAdd a b) must collide.
        grid = CvecSpec.make(("a", "b"), n_random=16, seed=0)
        result = enumerate_terms(spec, grid, max_size=3)
        reps = result.representatives
        interp = spec.interpreter()
        from repro.ruler.cvec import cvec_of

        add_cvec = cvec_of(parse("(+ a b)"), interp, grid)
        vecadd_cvec = cvec_of(parse("(VecAdd a b)"), interp, grid)
        assert add_cvec == vecadd_cvec
        # exactly one of them is the representative
        assert reps[add_cvec] in (
            parse("(+ a b)"), parse("(+ b a)"),
            parse("(VecAdd a b)"), parse("(VecAdd b a)"),
        )

    def test_no_pair_relates_inequivalent_terms(self, spec):
        from repro.interp.env import sample_envs
        from repro.interp.value import values_equal

        grid = CvecSpec.make(("a", "b"), n_random=16, seed=0)
        result = enumerate_terms(spec, grid, max_size=3)
        interp = spec.interpreter()
        # fresh inputs, disjoint from the cvec grid
        envs = sample_envs(("a", "b"), n_random=10, seed=777)
        for rep, newcomer in result.pairs[:80]:
            agree = sum(
                1
                for env in envs
                if values_equal(
                    interp.evaluate(rep, env),
                    interp.evaluate(newcomer, env),
                )
            )
            # cvec-equal terms should rarely disagree on new inputs;
            # sqrt/sgn corner mismatches are caught later by verify.
            assert agree >= len(envs) - 2, (rep, newcomer)
