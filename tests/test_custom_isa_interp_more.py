"""Custom-instruction interpreter semantics across value types."""

from fractions import Fraction

import pytest

from repro.interp.value import UNDEFINED
from repro.isa import customized_spec
from repro.lang.parser import parse


@pytest.fixture(scope="module")
def interp(spec):
    return customized_spec(spec, mulsub=True, sqrtsgn=True).interpreter()


class TestMulsub:
    @pytest.mark.parametrize(
        "c,a,b,expected",
        [
            (10, 2, 3, 4),
            (0, 5, 5, -25),
            (Fraction(1, 2), Fraction(1, 4), 2, 0),
            (-3, -2, -4, -11),
        ],
    )
    def test_values(self, interp, c, a, b, expected):
        env = {"c": c, "a": a, "b": b}
        assert interp.evaluate(parse("(mulsub c a b)"), env) == expected

    def test_vector_form_lanewise(self, interp):
        term = parse(
            "(VecMulSub (Vec 1 2 3 4) (Vec 1 1 1 1) (Vec 4 3 2 1))"
        )
        assert interp.evaluate(term, {}) == (-3, -1, 1, 3)

    def test_relation_to_base_ops(self, interp):
        # mulsub(c, a, b) == c - a*b on random-ish points
        for c, a, b in [(7, 2, 2), (0, 0, 9), (-5, 3, -1)]:
            env = {"c": c, "a": a, "b": b}
            direct = interp.evaluate(parse("(mulsub c a b)"), env)
            composed = interp.evaluate(parse("(- c (* a b))"), env)
            assert direct == composed


class TestSqrtSgn:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (4, -9, 2),
            (4, 9, -2),
            (4, 0, 0),
            (0, 5, 0),
            (Fraction(9, 16), -1, Fraction(3, 4)),
        ],
    )
    def test_values(self, interp, a, b, expected):
        env = {"a": a, "b": b}
        assert interp.evaluate(parse("(sqrtsgn a b)"), env) == expected

    def test_negative_radicand_undefined(self, interp):
        assert (
            interp.evaluate(parse("(sqrtsgn -4 1)"), {}) is UNDEFINED
        )

    def test_vector_form_collapses_on_bad_lane(self, interp):
        term = parse(
            "(VecSqrtSgn (Vec 1 4 -9 16) (Vec 1 1 1 1))"
        )
        assert interp.evaluate(term, {}) is UNDEFINED

    def test_relation_to_base_ops(self, interp):
        for a, b in [(9, 2), (16, -3), (1, 0)]:
            env = {"a": a, "b": b}
            direct = interp.evaluate(parse("(sqrtsgn a b)"), env)
            composed = interp.evaluate(
                parse("(* (sqrt a) (sgn (neg b)))"), env
            )
            assert direct == composed
