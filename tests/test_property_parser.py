"""Property-based parser round-trips over random terms/patterns."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lang import builders as B
from repro.lang.parser import parse, to_sexpr
from repro.lang.term import make


def random_terms():
    leaves = st.one_of(
        st.integers(-1000, 1000).map(B.const),
        st.floats(
            allow_nan=False,
            allow_infinity=False,
            min_value=-1e6,
            max_value=1e6,
        ).map(B.const),
        st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).map(
            B.symbol
        ),
        st.tuples(
            st.from_regex(r"[A-Za-z]{1,5}", fullmatch=True),
            st.integers(0, 99),
        ).map(lambda p: B.get(*p)),
        st.from_regex(r"[a-z][a-z0-9]{0,4}", fullmatch=True).map(
            B.wildcard
        ),
    )

    ops = st.sampled_from(
        ["+", "-", "*", "/", "neg", "sgn", "sqrt", "mac",
         "VecAdd", "VecMAC", "Vec", "Concat", "List"]
    )

    def extend(children):
        return st.builds(
            lambda op, args: make(op, *args),
            ops,
            st.lists(children, min_size=1, max_size=4),
        )

    return st.recursive(leaves, extend, max_leaves=10)


@given(random_terms())
@settings(max_examples=150, deadline=None)
def test_parse_print_roundtrip(term):
    assert parse(to_sexpr(term)) is term


@given(random_terms())
@settings(max_examples=100, deadline=None)
def test_printed_form_stable(term):
    once = to_sexpr(term)
    twice = to_sexpr(parse(once))
    assert once == twice
