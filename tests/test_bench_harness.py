"""Unit tests for the measurement harness and LoC inventory."""

from pathlib import Path

from repro.bench import (
    component_loc,
    format_speedup,
    format_table,
    measure_baseline,
    run_suite,
)
from repro.bench.loc import SUBSTRATE_COMPONENTS, TABLE1_COMPONENTS
from repro.kernels import matmul_kernel, qr_kernel


class TestMeasureBaseline:
    def test_scalar_measurement(self, spec):
        m = measure_baseline("scalar", matmul_kernel(2, 2, 2), spec)
        assert m.error is None
        assert m.correct
        assert m.cycles > 0
        assert m.n_instructions > 0

    def test_nature_missing_kernel_reports_error(self, spec):
        m = measure_baseline("nature", qr_kernel(3), spec)
        assert m.error
        assert not m.correct

    def test_unknown_system_reports_error(self, spec):
        m = measure_baseline("llvm", matmul_kernel(2, 2, 2), spec)
        assert m.error


class TestRunSuite:
    def test_rows_and_speedups(self, spec):
        rows = run_suite(
            [matmul_kernel(2, 2, 2)], spec, systems=("scalar", "slp")
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.cycles("scalar") > 0
        assert row.speedup("scalar") == 1.0
        assert row.speedup("slp") is not None
        assert row.speedup("nature") is None  # not measured

    def test_deterministic_given_seed(self, spec):
        a = run_suite([matmul_kernel(2, 2, 2)], spec,
                      systems=("scalar",), seed=4)
        b = run_suite([matmul_kernel(2, 2, 2)], spec,
                      systems=("scalar",), seed=4)
        assert a[0].cycles("scalar") == b[0].cycles("scalar")

    def test_parallel_jobs_match_serial(self, spec, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "2")  # 1-CPU CI still pools
        instances = [
            matmul_kernel(2, 2, 2),
            matmul_kernel(2, 3, 3),
            qr_kernel(3),
        ]
        serial = run_suite(instances, spec, systems=("scalar",), seed=1)
        fanned = run_suite(instances, spec, systems=("scalar",), seed=1,
                           jobs=2)
        assert [r.key for r in fanned] == [r.key for r in serial]
        for fast, slow in zip(fanned, serial):
            assert fast.cycles("scalar") == slow.cycles("scalar")

    def test_forced_serial_env_matches(self, spec, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        rows = run_suite([matmul_kernel(2, 2, 2)], spec,
                         systems=("scalar",), seed=1, jobs=4)
        baseline = run_suite([matmul_kernel(2, 2, 2)], spec,
                             systems=("scalar",), seed=1)
        assert rows[0].cycles("scalar") == baseline[0].cycles("scalar")


class TestTables:
    def test_format_speedup(self):
        assert format_speedup(None) == "-"
        assert format_speedup(2.5) == "2.50x"

    def test_format_table_alignment(self):
        text = format_table(
            ["name", "val"], [["a", 1], ["longer", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "val" in lines[1]
        assert len(lines) == 5


class TestLoc:
    def test_components_counted(self):
        loc = component_loc()
        for name in list(TABLE1_COMPONENTS) + list(SUBSTRATE_COMPONENTS):
            assert loc[name] > 0, name
        assert loc["Total (Table 1 scope)"] == sum(
            loc[n] for n in TABLE1_COMPONENTS
        )

    def test_counts_exclude_comments_and_docstrings(self, tmp_path):
        from repro.bench.loc import _count_file

        path = tmp_path / "demo.py"
        path.write_text(
            '"""Docstring\nspanning lines."""\n'
            "# comment\n\n"
            "x = 1\n"
            "def f():\n"
            '    """inner doc."""\n'
            "    return x\n"
        )
        assert _count_file(Path(path)) == 3
