"""Kernel-instance plumbing details."""

import numpy as np
import pytest

from repro.kernels import (
    conv2d_kernel,
    matmul_kernel,
    padded_memory,
    run_reference,
)


class TestRunReference:
    def test_output_is_flat_float_array(self):
        instance = matmul_kernel(2, 2, 2)
        out = run_reference(instance, instance.make_inputs(0))
        assert out.dtype == float
        assert out.ndim == 1
        assert out.shape == (4,)

    def test_reference_independent_of_trace(self):
        # The reference is numpy math, not an evaluation of the traced
        # term: check a case computable by hand.
        instance = matmul_kernel(2, 2, 2)
        inputs = {"A": [1, 2, 3, 4], "B": [5, 6, 7, 8]}
        out = run_reference(instance, inputs)
        assert list(out) == [19.0, 22.0, 43.0, 50.0]

    def test_conv_reference_by_hand(self):
        instance = conv2d_kernel(2, 2, 2, 2)
        inputs = {"I": [1, 0, 0, 0], "F": [1, 2, 3, 4]}
        out = run_reference(instance, inputs)
        # impulse at (0,0): output = the filter itself padded into 3x3
        assert list(out) == [1.0, 2.0, 0.0, 3.0, 4.0, 0.0, 0.0, 0.0,
                             0.0]


class TestMakeInputs:
    def test_key_changes_distribution(self):
        a = matmul_kernel(2, 2, 2).make_inputs(0)
        b = conv2d_kernel(2, 2, 2, 2).make_inputs(0)
        assert list(a) != list(b) or a != b

    def test_values_bounded(self):
        inputs = matmul_kernel(3, 3, 3).make_inputs(7)
        for values in inputs.values():
            assert all(-4.0 <= v <= 4.0 for v in values)


class TestPaddedMemory:
    def test_output_padded_to_chunk_multiple(self):
        instance = conv2d_kernel(2, 2, 2, 2)  # 9 outputs -> 12 padded
        memory = padded_memory(instance, instance.make_inputs(0))
        assert len(memory["out"]) == 12

    def test_inputs_zero_padded_not_garbage(self):
        instance = matmul_kernel(3, 3, 3)
        memory = padded_memory(instance, instance.make_inputs(0))
        assert memory["A"][9:] == [0.0] * 3

    def test_original_inputs_preserved(self):
        instance = matmul_kernel(2, 2, 2)
        inputs = {"A": [1, 2, 3, 4], "B": [5, 6, 7, 8]}
        memory = padded_memory(instance, inputs)
        assert memory["A"] == [1.0, 2.0, 3.0, 4.0]
        assert memory["B"] == [5.0, 6.0, 7.0, 8.0]


class TestKernelKeyStability:
    @pytest.mark.parametrize(
        "make,key",
        [
            (lambda: matmul_kernel(2, 3, 4), "matmul-2x3x4"),
            (lambda: conv2d_kernel(3, 4, 2, 3), "2dconv-3x4-2x3"),
        ],
    )
    def test_keys(self, make, key):
        assert make().key == key

    def test_program_term_deterministic(self):
        a = matmul_kernel(3, 3, 3).program.term
        b = matmul_kernel(3, 3, 3).program.term
        assert a is b  # interning + deterministic trace
