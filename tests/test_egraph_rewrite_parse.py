"""Additional rewrite-rule construction and application tests."""

import pytest

from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import Rewrite, apply_rewrite, parse_rewrite
from repro.lang.parser import parse


class TestRewriteConstruction:
    def test_str_format(self):
        rule = parse_rewrite("r", "(+ ?a 0) => ?a")
        assert str(rule) == "(+ ?a 0) => ?a"

    def test_missing_arrow_raises(self):
        with pytest.raises(ValueError):
            parse_rewrite("r", "(+ ?a 0) -> ?a")

    def test_nonlinear_lhs_rule(self):
        rule = parse_rewrite("sq", "(* ?a ?a) => (* ?a ?a)")
        assert rule.lhs == rule.rhs

    def test_reversible_detection(self):
        assert parse_rewrite("c", "(+ ?a ?b) => (+ ?b ?a)").is_reversible
        assert not parse_rewrite("z", "(* ?a 0) => 0").is_reversible
        directed = parse_rewrite("z", "(* ?a 0) => 0")
        with pytest.raises(ValueError):
            directed.reversed()


class TestApply:
    def test_nonlinear_pattern_only_matches_equal_children(self):
        g = EGraph()
        same = g.add_term(parse("(* (Get x 0) (Get x 0))"))
        diff = g.add_term(parse("(* (Get x 0) (Get x 1))"))
        rule = Rewrite("sq0", parse("(* ?a ?a)"), parse("(Get marker 0)"))
        apply_rewrite(g, rule)
        g.rebuild()
        marker = g.lookup_term(parse("(Get marker 0)"))
        assert g.equivalent(same, marker)
        assert not g.equivalent(diff, marker)

    def test_rule_applies_at_depth(self):
        g = EGraph()
        root = g.add_term(parse("(neg (neg (+ (Get x 0) 0)))"))
        apply_rewrite(g, parse_rewrite("id", "(+ ?a 0) => ?a"))
        g.rebuild()
        assert g.lookup_term(parse("(neg (neg (Get x 0)))")) == g.find(
            root
        )

    def test_stats_counts(self):
        g = EGraph()
        g.add_term(parse("(+ 1 0)"))
        g.add_term(parse("(+ 2 0)"))
        stats = apply_rewrite(g, parse_rewrite("id", "(+ ?a 0) => ?a"))
        assert stats.n_matches == 2
        assert stats.n_unions == 2

    def test_union_into_existing_class(self):
        g = EGraph()
        a = g.add_term(parse("(+ (Get x 0) 0)"))
        b = g.add_term(parse("(Get x 0)"))
        stats = apply_rewrite(g, parse_rewrite("id", "(+ ?a 0) => ?a"))
        g.rebuild()
        assert stats.n_unions == 1
        assert g.equivalent(a, b)

    def test_repeated_application_idempotent(self):
        g = EGraph()
        g.add_term(parse("(+ (Get x 0) 0)"))
        rule = parse_rewrite("id", "(+ ?a 0) => ?a")
        apply_rewrite(g, rule)
        g.rebuild()
        stats = apply_rewrite(g, rule)
        assert stats.n_unions == 0
