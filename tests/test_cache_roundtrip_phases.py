"""Serialization round-trips preserve compiler behaviour."""

import pytest

from repro.core.cache import rules_from_text, rules_to_text
from repro.phases import CostModel, assign_phases, default_params


class TestRuleSerializationFidelity:
    def test_phase_assignment_survives_roundtrip(
        self, spec, synthesis_size3
    ):
        model = CostModel(spec)
        params = default_params(spec)
        original = assign_phases(model, synthesis_size3.rules, params)
        restored_rules = rules_from_text(
            rules_to_text(synthesis_size3.rules)
        )
        restored = assign_phases(model, restored_rules, params)
        assert original.counts() == restored.counts()
        assert [str(r) for r in original] == [str(r) for r in restored]

    def test_compilation_results_identical(
        self, spec, synthesis_size3, isaria_compiler
    ):
        from repro.core import GeneratedCompiler
        from repro.kernels import matmul_kernel

        model = CostModel(spec)
        params = default_params(spec)
        restored_rules = rules_from_text(
            rules_to_text(synthesis_size3.rules)
        )
        compiler = GeneratedCompiler(
            spec=spec,
            cost_model=model,
            ruleset=assign_phases(model, restored_rules, params),
            options=isaria_compiler.options,
        )
        program = matmul_kernel(2, 2, 2).program.term
        direct = GeneratedCompiler(
            spec=spec,
            cost_model=model,
            ruleset=assign_phases(model, synthesis_size3.rules, params),
            options=isaria_compiler.options,
        )
        a, _ = direct.compile_term(program)
        b, _ = compiler.compile_term(program)
        assert a == b

    def test_unicode_and_floats_roundtrip(self):
        from repro.egraph.rewrite import parse_rewrite

        rules = [parse_rewrite("half", "(* ?a 0.5) => (/ ?a 2)")]
        restored = rules_from_text(rules_to_text(rules))
        assert str(restored[0]) == "(* ?a 0.5) => (/ ?a 2)"
