"""More Nature-library tests: loop structure and scratch handling."""

import numpy as np
import pytest

from repro.baselines.nature import nature_program
from repro.kernels import (
    conv2d_kernel,
    matmul_kernel,
    padded_memory,
    run_reference,
)
from repro.machine import Machine


@pytest.fixture(scope="module")
def machine(spec):
    return Machine(spec)


def run_nature(machine, spec, instance, seed=1):
    program, extra = nature_program(instance, spec)
    inputs = instance.make_inputs(seed)
    memory = padded_memory(instance, inputs)
    for name, size in extra.items():
        memory[name] = [0.0] * size
    result = machine.run(program, memory)
    got = result.array(instance.program.output)[: instance.output_len]
    want = run_reference(instance, inputs)
    assert np.allclose(got, want, rtol=1e-4, atol=1e-5), instance.key
    return program, result


class TestMatmulStructure:
    def test_aligned_size_uses_no_scratch(self, spec):
        program, extra = nature_program(matmul_kernel(4, 4, 4), spec)
        assert extra == {}
        assert program.count("v.op") > 0

    def test_tail_columns_use_scalar_mac(self, spec):
        program, _extra = nature_program(matmul_kernel(4, 4, 5), spec)
        macs = [
            i for i in program.instrs
            if i.opcode == "s.op" and i.op == "mac"
        ]
        assert macs  # one tail column => scalar reduction

    def test_tiny_matmul_correct(self, spec, machine):
        run_nature(machine, spec, matmul_kernel(1, 1, 1))

    @pytest.mark.parametrize("m,k,n", [(3, 4, 5), (5, 3, 4), (2, 6, 2)])
    def test_rectangular_correct(self, spec, machine, m, k, n):
        run_nature(machine, spec, matmul_kernel(m, k, n))

    def test_vector_loop_iterations_scale(self, spec, machine):
        _p4, r4 = run_nature(machine, spec, matmul_kernel(4, 4, 4))
        _p8, r8 = run_nature(machine, spec, matmul_kernel(8, 4, 8))
        # 4x the output in roughly 2-6x the cycles (loops, not unrolled)
        assert 2 * r4.cycles < r8.cycles < 8 * r4.cycles


class TestConvStructure:
    def test_scratch_image_allocated(self, spec):
        instance = conv2d_kernel(3, 3, 2, 2)
        _program, extra = nature_program(instance, spec)
        assert "nat_P" in extra
        p_rows = 3 + 2 * (2 - 1)
        p_cols = 3 + 2 * (2 - 1) + spec.vector_width
        width = spec.vector_width
        padded = ((p_rows * p_cols + width - 1) // width) * width
        assert extra["nat_P"] == padded

    @pytest.mark.parametrize(
        "shape", [(3, 3, 2, 2), (4, 4, 3, 3), (5, 3, 2, 3), (3, 5, 3, 2)]
    )
    def test_correct_across_shapes(self, spec, machine, shape):
        run_nature(machine, spec, conv2d_kernel(*shape))

    def test_zero_border_isolated_from_inputs(self, spec, machine):
        # An impulse image: the padded-borders must contribute zeros.
        instance = conv2d_kernel(3, 3, 3, 3)
        program, extra = nature_program(instance, spec)
        inputs = {
            "I": [0.0] * 9,
            "F": [float(i) for i in range(9)],
        }
        inputs["I"][4] = 1.0  # centre impulse
        memory = padded_memory(instance, inputs)
        for name, size in extra.items():
            memory[name] = [7777.0] * size  # poison the scratch
        result = machine.run(program, memory)
        got = result.array("out")[: instance.output_len]
        want = run_reference(instance, inputs)
        assert np.allclose(got, want, rtol=1e-5), (
            "scratch poison leaked through the zero border"
        )
