"""Unit tests for the kernel suite: traces match numpy references."""

import numpy as np
import pytest

from repro.kernels import (
    conv2d_kernel,
    default_suite,
    matmul_kernel,
    padded_memory,
    qr_kernel,
    quaternion_product_kernel,
    run_reference,
    suite_by_key,
)
from repro.kernels.qr import qr_reference


def interp_outputs(spec, instance, inputs):
    interp = spec.interpreter()
    env = {k: [float(x) for x in v] for k, v in inputs.items()}
    chunks = interp.evaluate(instance.program.term, env)
    flat = [lane for chunk in chunks for lane in chunk]
    return flat[: instance.output_len]


class TestTraceVsReference:
    @pytest.mark.parametrize(
        "instance", default_suite(), ids=lambda k: k.key
    )
    def test_trace_matches_numpy(self, spec, instance):
        inputs = instance.make_inputs(seed=7)
        got = interp_outputs(spec, instance, inputs)
        want = run_reference(instance, inputs)
        assert np.allclose(got, want, rtol=1e-7, atol=1e-8), instance.key


class TestShapes:
    def test_conv2d_output_size(self):
        instance = conv2d_kernel(4, 4, 3, 3)
        assert instance.output_len == 6 * 6
        assert instance.arrays == {"I": 16, "F": 9}

    def test_matmul_output_size(self):
        instance = matmul_kernel(2, 3, 5)
        assert instance.output_len == 10
        assert instance.arrays == {"A": 6, "B": 15}

    def test_qprod_fixed_size(self):
        instance = quaternion_product_kernel()
        assert instance.output_len == 4

    def test_qr_outputs_r_matrix(self):
        instance = qr_kernel(3)
        assert instance.output_len == 9


class TestQrReference:
    def test_upper_triangular(self):
        rng = np.random.default_rng(5)
        a = rng.uniform(-2, 2, size=(4, 4))
        r = qr_reference(a)
        assert np.allclose(np.tril(r, -1), 0.0, atol=1e-9)

    def test_magnitudes_match_numpy_qr(self):
        rng = np.random.default_rng(6)
        a = rng.uniform(-2, 2, size=(4, 4))
        ours = qr_reference(a)
        _, theirs = np.linalg.qr(a)
        assert np.allclose(np.abs(ours), np.abs(theirs), atol=1e-8)

    def test_qr_kernel_uses_sqrt_sgn_pattern(self):
        from repro.lang.pattern import contains_op

        instance = qr_kernel(3)
        term = instance.program.term
        assert contains_op(term, "sqrt")
        assert contains_op(term, "sgn")
        assert contains_op(term, "/")


class TestInputsAndMemory:
    def test_make_inputs_deterministic(self):
        instance = matmul_kernel(3, 3, 3)
        assert instance.make_inputs(1) == instance.make_inputs(1)
        assert instance.make_inputs(1) != instance.make_inputs(2)

    def test_padded_memory_shapes(self):
        instance = matmul_kernel(3, 3, 3)  # arrays of 9, out 9
        memory = padded_memory(instance, instance.make_inputs(0))
        assert len(memory["A"]) == 12
        assert len(memory["B"]) == 12
        assert len(memory["out"]) == 12
        assert memory["A"][9:] == [0.0, 0.0, 0.0]

    def test_padded_memory_validates_lengths(self):
        instance = matmul_kernel(2, 2, 2)
        with pytest.raises(ValueError):
            padded_memory(instance, {"A": [1.0], "B": [0.0] * 4})


class TestSuite:
    def test_default_suite_families(self):
        families = {inst.family for inst in default_suite()}
        assert families == {"2DConv", "MatMul", "QP", "QrD"}

    def test_suite_by_key_unique(self):
        suite = suite_by_key()
        assert len(suite) == len(default_suite())
        assert "qprod" in suite

    def test_custom_grid(self):
        suite = default_suite(
            conv2d_sizes=[(3, 3, 2, 2)],
            matmul_sizes=[(2, 2, 2)],
            qr_sizes=[3],
            include_qprod=False,
        )
        assert [inst.key for inst in suite] == [
            "2dconv-3x3-2x2",
            "matmul-2x2x2",
            "qr-3x3",
        ]
