"""Tests for the incrementally maintained per-op candidate index and
the exact live-node counter."""

from __future__ import annotations

import random

import pytest

from repro.egraph.egraph import EGraph
from repro.egraph.ematch import ematch
from repro.egraph.rewrite import parse_rewrite
from repro.egraph.runner import RunnerLimits, run_saturation
from repro.lang.parser import parse


def _canonical_sets(g: EGraph, index: dict) -> dict:
    return {
        op: {g.find(c) for c in ids} for op, ids in index.items() if ids
    }


def _random_mutations(g: EGraph, rng: random.Random, n_ops: int):
    ops = [("+", 2), ("*", 2), ("neg", 1)]
    leaves = ["a", "b", "c", "0", "1"]
    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.6:
            op, arity = rng.choice(ops)
            args = " ".join(rng.choice(leaves) for _ in range(arity))
            g.add_term(parse(f"({op} {args})"))
        else:
            classes = [c.id for c in g.classes()]
            if len(classes) >= 2:
                g.union(rng.choice(classes), rng.choice(classes))
        if rng.random() < 0.3:
            g.rebuild()
    g.rebuild()


class TestIncrementalIndex:
    @pytest.mark.parametrize("seed", range(15))
    def test_matches_rescan_after_random_ops(self, seed):
        rng = random.Random(seed)
        g = EGraph()
        _random_mutations(g, rng, 60)
        incremental = _canonical_sets(g, g.op_index())
        rescan = _canonical_sets(g, g.op_index_rescan())
        assert incremental == rescan

    def test_compaction_bounds_entries(self):
        g = EGraph()
        root = g.add_term(parse("(+ a b)"))
        for i in range(200):
            g.union(root, g.add_term(parse(f"(+ a x{i})")))
        g.rebuild()
        index = g.op_index()  # staleness threshold forces a compaction
        assert g._index_stale == 0
        # one canonical + class survives; the candidate list is deduped
        assert len(index["+"]) == 1

    def test_snapshot_is_isolated_from_later_adds(self):
        g = EGraph()
        g.add_term(parse("(+ a b)"))
        snapshot = g.op_index()
        before = list(snapshot["+"])
        g.add_term(parse("(+ c d)"))
        assert snapshot["+"] == before
        assert len(g.op_index()["+"]) == 2

    def test_rescan_flag_returns_fresh_build(self):
        g = EGraph()
        g.add_term(parse("(* a b)"))
        assert _canonical_sets(g, g.op_index(rescan=True)) == (
            _canonical_sets(g, g.op_index())
        )

    def test_ematch_results_identical_with_either_index(self):
        g = EGraph()
        a = g.add_term(parse("(+ (neg p) q)"))
        b = g.add_term(parse("(+ q (neg p))"))
        g.union(a, b)
        g.rebuild()
        pattern = parse("(+ ?x ?y)")
        inc = ematch(g, pattern, op_index=g.op_index())
        scan = ematch(g, pattern, op_index=g.op_index_rescan())
        key = lambda m: (g.find(m[0]), tuple(sorted(m[1].items())))
        assert sorted(map(key, inc)) == sorted(map(key, scan))

    def test_merged_class_found_through_stale_entry(self):
        g = EGraph()
        a = g.add_term(parse("(neg a)"))
        b = g.add_term(parse("(neg b)"))
        g.union(a, b)
        g.rebuild()
        # Without compaction the index may still hold the dead id; the
        # matcher must resolve it to the survivor and still match.
        matches = ematch(g, parse("(neg ?x)"), op_index=g.op_index())
        assert {g.find(c) for c, _ in matches} == {g.find(a)}


class TestLiveNodeCount:
    @pytest.mark.parametrize("seed", range(10))
    def test_tracks_exact_sum(self, seed):
        rng = random.Random(100 + seed)
        g = EGraph()
        _random_mutations(g, rng, 50)
        assert g.n_nodes == sum(len(c.nodes) for c in g.classes())
        assert g.n_nodes_live == g.n_nodes
        assert g.n_nodes_fast >= g.n_nodes

    def test_shrinks_after_dedup(self):
        g = EGraph()
        a = g.add_term(parse("(neg a)"))
        b = g.add_term(parse("(neg b)"))
        before = g.n_nodes_live
        g.union(g.add_term(parse("a")), g.add_term(parse("b")))
        g.rebuild()  # (neg a) and (neg b) become one canonical node
        assert g.n_nodes_live < before
        assert g.equivalent(a, b)

    def test_mid_iteration_guard_allows_long_runs(self):
        # A run that repeatedly pads and dedups must not trip the
        # mid-iteration guard: the live count comes back down on
        # rebuild, unlike the historical ever-growing upper bound.
        g = EGraph()
        for i in range(12):
            g.add_term(parse(f"(Get x {i})"))
        report = run_saturation(
            g,
            [
                parse_rewrite("pad", "?a => (+ ?a 0)"),
                parse_rewrite("unpad", "(+ ?a 0) => ?a"),
                parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)"),
            ],
            RunnerLimits(max_iterations=40, max_nodes=5_000),
        )
        assert report.saturated
        assert g.n_nodes == sum(len(c.nodes) for c in g.classes())
