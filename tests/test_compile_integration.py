"""Integration tests: the Fig. 3 compile loop end-to-end.

Uses the session-scoped size-4 generated compiler (fast synthesis)
plus the shipped pregenerated rule set for quality-sensitive checks.
"""

import dataclasses

import numpy as np
import pytest

from repro.baselines import compile_scalar
from repro.core import default_compiler
from repro.core.pregen import DEFAULT_RULES_FILE
from repro.kernels import (
    conv2d_kernel,
    matmul_kernel,
    padded_memory,
    quaternion_product_kernel,
    run_reference,
)
from repro.lang.parser import parse
from repro.lang.term import subterms
from repro.machine import Machine

needs_pregen = pytest.mark.skipif(
    not DEFAULT_RULES_FILE.exists(),
    reason="pregenerated rules not built",
)


def _vectorized(term) -> bool:
    return any(
        sub.op.startswith("Vec") and sub.op != "Vec"
        for sub in subterms(term)
    )


class TestCompileLoop:
    def test_intro_example(self, isaria_compiler):
        program = parse(
            "(List (Vec (+ (Get x 0) (Get y 0)) (+ (Get x 1) (Get y 1))"
            " (+ (Get x 2) (Get y 2)) (Get x 3)))"
        )
        compiled, report = isaria_compiler.compile_term(program)
        assert _vectorized(compiled)
        assert report.final_cost < report.initial_cost / 10
        assert report.n_eqsat_calls >= 2
        assert report.speedup_estimate > 10

    def test_report_structure(self, isaria_compiler):
        program = matmul_kernel(2, 2, 2).program.term
        _compiled, report = isaria_compiler.compile_term(program)
        assert report.rounds
        assert report.rounds[0].expansion is None  # round 0 skips it
        assert report.optimization is not None
        assert report.elapsed > 0
        assert report.peak_nodes > 0

    def test_unphased_ablation_runs(self, isaria_compiler):
        options = dataclasses.replace(
            isaria_compiler.options,
            phased=False,
        )
        program = matmul_kernel(2, 2, 2).program.term
        compiled, report = isaria_compiler.compile_term(
            program, options=options
        )
        assert len(report.rounds) == 1
        assert report.final_cost <= report.initial_cost

    def test_pruning_off_retains_graph(self, isaria_compiler):
        options = dataclasses.replace(
            isaria_compiler.options, pruning=False, max_rounds=3
        )
        program = matmul_kernel(2, 2, 2).program.term
        compiled, report = isaria_compiler.compile_term(
            program, options=options
        )
        assert report.final_cost <= report.initial_cost


class TestCompiledKernelCorrectness:
    @pytest.mark.parametrize(
        "instance",
        [
            matmul_kernel(2, 2, 2),
            conv2d_kernel(3, 3, 2, 2),
            quaternion_product_kernel(),
        ],
        ids=lambda k: k.key,
    )
    def test_machine_output_matches_reference(
        self, spec, isaria_compiler, instance
    ):
        kernel = isaria_compiler.compile_kernel(instance)
        inputs = instance.make_inputs(5)
        result = Machine(spec).run(
            kernel.machine_program, padded_memory(instance, inputs)
        )
        got = result.array("out")[: instance.output_len]
        want = run_reference(instance, inputs)
        assert np.allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_translation_validation_catches_bad_terms(
        self, isaria_compiler
    ):
        from repro.core.framework import ValidationError

        good = parse("(List (Vec (Get x 0) (Get x 1) 0 0))")
        bad = parse("(List (Vec (Get x 1) (Get x 0) 0 0))")
        with pytest.raises(ValidationError):
            isaria_compiler.validate_equivalence(good, bad)
        isaria_compiler.validate_equivalence(good, good)


@needs_pregen
class TestPregeneratedCompiler:
    def test_loads_and_vectorizes_matmul(self, spec):
        compiler = default_compiler(spec)
        assert len(compiler.ruleset) > 300
        instance = matmul_kernel(2, 2, 2)
        kernel = compiler.compile_kernel(instance)
        assert _vectorized(kernel.compiled_term)
        inputs = instance.make_inputs(3)
        machine = Machine(spec)
        vec = machine.run(
            kernel.machine_program, padded_memory(instance, inputs)
        )
        scal = machine.run(
            compile_scalar(instance.program, spec),
            padded_memory(instance, inputs),
        )
        assert vec.cycles < scal.cycles
        assert np.allclose(
            vec.array("out")[: instance.output_len],
            run_reference(instance, inputs),
            rtol=1e-4,
        )

    def test_c_source_emission(self, spec):
        compiler = default_compiler(spec)
        kernel = compiler.compile_kernel(matmul_kernel(2, 2, 2))
        source = kernel.c_source()
        assert source.startswith("void matmul_2x2_2x2")
        assert "vec_" in source
