"""Interaction of padding constants with extraction and lowering.

Alignment pads lanes with zero-products; these must (a) never survive
into machine code as real work when avoidable and (b) be harmless when
they do survive.
"""

import numpy as np

from repro.compiler.frontend import trace_kernel
from repro.compiler.lowering import lower_program
from repro.lang.parser import parse, to_sexpr
from repro.machine import Machine


class TestZeroLanesInMachineCode:
    def test_zero_lane_in_vec_literal_costs_nothing_extra(self, spec):
        # (Vec m m m 0): the const lane rides along in the shuffle
        # blend; no scalar zero computation is emitted.
        text = "(List (Vec (Get x 0) (Get x 1) (Get x 2) 0))"
        program = lower_program(parse(text), spec, {"x": 4})
        assert program.count("s.const") == 0
        assert program.count("v.insert") == 0

    def test_zero_product_lanes_fold_to_zero_vector(
        self, spec, isaria_compiler
    ):
        # A ragged sum padded at trace time: after compilation the
        # zero products must not generate multiplies for every lane.
        def kern(x):
            return [
                x[0] + x[1] + x[2],
                x[1],
                x[2] + x[3],
                x[0] + x[1] + x[3],
            ]

        program = trace_kernel("ragged", kern, {"x": 4}, 4)
        kernel = isaria_compiler.compile_kernel(program)
        result = kernel.run({"x": [1.0, 2.0, 3.0, 4.0]})
        assert np.allclose(
            result.array("out"), [6.0, 2.0, 7.0, 7.0]
        )

    def test_padding_visible_in_traced_term(self):
        def kern(x):
            return [x[0] + x[1], x[2], x[3], x[0]]

        program = trace_kernel("pad", kern, {"x": 4}, 4)
        text = to_sexpr(program.term)
        # the shorter lanes were padded to binary additions
        chunk = program.term.args[0]
        assert all(lane.op == "+" for lane in chunk.args), text


class TestMachineSemanticsOfResidualPadding:
    def test_zero_products_execute_harmlessly(self, spec):
        text = (
            "(List (VecMul (Vec (Get x 0) 0 (Get x 1) 0)"
            " (Vec (Get y 0) 0 (Get y 1) 0)))"
        )
        program = lower_program(parse(text), spec, {"x": 2, "y": 2})
        # machine memory is always padded to the vector width (the
        # lower_program contract; padded_memory does this for kernels)
        result = Machine(spec).run(
            program,
            {
                "x": [3.0, 4.0, 0.0, 0.0],
                "y": [5.0, 6.0, 0.0, 0.0],
                "out": [0.0] * 4,
            },
        )
        assert result.array("out") == [15.0, 0.0, 24.0, 0.0]
