"""Properties of the shipped rule set (the default compiler's rules)."""

import pytest

from repro.core.pregen import DEFAULT_RULES_FILE, load_pregenerated_rules
from repro.isa import fusion_g3_spec
from repro.phases import CostModel, assign_phases, default_params

pytestmark = pytest.mark.skipif(
    not DEFAULT_RULES_FILE.exists(),
    reason="pregenerated rules not built",
)


@pytest.fixture(scope="module")
def ruleset():
    spec = fusion_g3_spec()
    rules = load_pregenerated_rules()
    return assign_phases(CostModel(spec), rules, default_params(spec))


class TestPhasePopulations:
    def test_all_phases_populated(self, ruleset):
        counts = ruleset.counts()
        assert counts["expansion"] > 50
        assert counts["compilation"] > 20
        assert counts["optimization"] > 20

    def test_canonical_lifts_in_compilation(self, ruleset):
        lift_targets = {
            r.rhs.op
            for r in ruleset.compilation
            if r.lhs.op == "Vec"
        }
        assert {
            "VecAdd", "VecMinus", "VecMul", "VecDiv",
            "VecNeg", "VecSqrt", "VecSgn", "VecMAC",
        } <= lift_targets

    def test_identity_introductions_in_expansion(self, ruleset):
        bare = [r for r in ruleset.expansion if r.lhs.op == "Wild"]
        texts = {str(r) for r in bare}
        assert "?w0 => (+ ?w0 0)" in texts

    def test_commutativity_and_associativity_present(self, ruleset):
        texts = {str(r) for r in ruleset.all_rules()}
        assert "(+ ?w0 ?w1) => (+ ?w1 ?w0)" in texts
        assert "(* ?w0 ?w1) => (* ?w1 ?w0)" in texts
        assert any(
            "(+ (+ " in t and "Vec" not in t for t in texts
        ), "no scalar associativity rules"

    def test_mac_bridge_present(self, ruleset):
        texts = {str(r) for r in ruleset.all_rules()}
        assert any(
            t.startswith("(mac ?w0 ?w1 ?w2) =>")
            or "=> (mac ?w0 ?w1 ?w2)" in t
            for t in texts
        )

    def test_vector_mac_fusion_present(self, ruleset):
        texts = {str(r) for r in ruleset.optimization}
        assert any("VecMAC" in t for t in texts)


class TestRuleHygiene:
    def test_no_duplicate_rules(self, ruleset):
        texts = [str(r) for r in ruleset.all_rules()]
        assert len(texts) == len(set(texts))

    def test_no_trivial_rules(self, ruleset):
        for rule in ruleset.all_rules():
            assert rule.lhs != rule.rhs, str(rule)

    def test_rhs_wildcards_bound(self, ruleset):
        from repro.lang.pattern import wildcards_of

        for rule in ruleset.all_rules():
            assert set(wildcards_of(rule.rhs)) <= set(
                wildcards_of(rule.lhs)
            ), str(rule)

    def test_sample_rules_sound(self, ruleset):
        """Spot-verify a deterministic sample at full width."""
        from repro.lang.ops import OpKind
        from repro.lang.term import subterms
        from repro.ruler.verify import verify_rule, verify_vector_rule

        spec = fusion_g3_spec()
        sample = ruleset.all_rules()[::37]  # ~25 rules

        def vectorish(rule):
            for side in (rule.lhs, rule.rhs):
                for sub in subterms(side):
                    if sub.op == "Vec" or (
                        spec.has_instruction(sub.op)
                        and spec.instruction(sub.op).kind
                        is OpKind.VECTOR
                    ):
                        return True
            return False

        for rule in sample:
            if vectorish(rule):
                result = verify_vector_rule(
                    rule.lhs, rule.rhs, spec, n_samples=8
                )
            else:
                result = verify_rule(
                    rule.lhs, rule.rhs, spec, n_samples=24, seed=5
                )
            assert result.ok, (str(rule), result.detail)
