"""Unit tests for ISA specifications and custom instructions (§5.4)."""

import pytest

from repro.isa import customized_spec, fusion_g3_spec
from repro.isa.spec import Instruction, IsaSpec
from repro.lang.ops import OpKind
from repro.lang.parser import parse


class TestBaseSpec:
    def test_scalar_and_vector_counterparts(self, spec):
        for vector in spec.vector_instructions():
            scalar = spec.scalar_counterpart(vector.name)
            assert scalar is not None
            assert spec.vector_counterpart(scalar) == vector.name

    def test_registry_contains_all_instructions(self, spec):
        registry = spec.registry()
        for instr in spec.instructions:
            assert instr.name in registry
            assert registry[instr.name].arity == instr.arity

    def test_op_costs_all_positive(self, spec):
        assert all(c > 0 for c in spec.op_costs().values())

    def test_vector_cheaper_than_scalar(self, spec):
        # The DSP premise: a vector op amortizes its lanes.
        for vector in spec.vector_instructions():
            scalar = spec.instruction(vector.vector_of)
            assert vector.base_cost < scalar.base_cost

    def test_unknown_instruction_raises(self, spec):
        with pytest.raises(KeyError):
            spec.instruction("nope")
        assert not spec.has_instruction("nope")


class TestValidation:
    def test_duplicate_names_rejected(self, spec):
        with pytest.raises(ValueError):
            IsaSpec(
                name="dup",
                vector_width=4,
                instructions=spec.instructions + (spec.instructions[0],),
            )

    def test_zero_cost_rejected(self):
        with pytest.raises(ValueError):
            Instruction("bad", 1, OpKind.SCALAR, lambda a: a, 0.0)

    def test_narrow_width_rejected(self, spec):
        with pytest.raises(ValueError):
            IsaSpec(name="w1", vector_width=1,
                    instructions=spec.instructions)


class TestCustomInstructions:
    def test_mulsub_semantics(self, spec):
        custom = customized_spec(spec, mulsub=True)
        interp = custom.interpreter()
        assert interp.evaluate(parse("(mulsub 10 2 3)"), {}) == 4
        term = parse(
            "(VecMulSub (Vec 10 10 10 10) (Vec 1 2 3 4) (Vec 1 1 1 1))"
        )
        assert interp.evaluate(term, {}) == (9, 8, 7, 6)

    def test_sqrtsgn_semantics(self, spec):
        custom = customized_spec(spec, sqrtsgn=True)
        interp = custom.interpreter()
        # sqrtsgn(a, b) = sqrt(a) * sgn(-b)
        assert interp.evaluate(parse("(sqrtsgn 9 -2)"), {}) == 3
        assert interp.evaluate(parse("(sqrtsgn 9 2)"), {}) == -3
        assert interp.evaluate(parse("(sqrtsgn 9 0)"), {}) == 0
        from repro.interp.value import UNDEFINED

        assert interp.evaluate(parse("(sqrtsgn -1 1)"), {}) is UNDEFINED

    def test_four_configurations(self, spec):
        none = customized_spec(spec)
        assert none is spec
        both = customized_spec(spec, mulsub=True, sqrtsgn=True)
        assert both.has_instruction("VecMulSub")
        assert both.has_instruction("VecSqrtSgn")
        assert both.name.endswith("mulsub+sqrtsgn")
        only = customized_spec(spec, sqrtsgn=True)
        assert only.has_instruction("VecSqrtSgn")
        assert not only.has_instruction("VecMulSub")

    def test_extension_preserves_base(self, spec):
        custom = customized_spec(spec, mulsub=True, sqrtsgn=True)
        for instr in spec.instructions:
            assert custom.has_instruction(instr.name)
        assert custom.vector_width == spec.vector_width

    def test_custom_registry_roundtrip(self, spec):
        custom = customized_spec(spec, sqrtsgn=True)
        registry = custom.registry()
        assert "VecSqrtSgn" in registry
        assert registry["VecSqrtSgn"].vector_of == "sqrtsgn"
