"""Unit tests for the Diospyros hand-written-rules baseline."""

import numpy as np
import pytest

from repro.compiler.diospyros import DiospyrosCompiler, diospyros_rules
from repro.compiler.lowering import lower_program
from repro.kernels import (
    conv2d_kernel,
    matmul_kernel,
    padded_memory,
    quaternion_product_kernel,
    run_reference,
)
from repro.lang.parser import parse
from repro.machine import Machine
from repro.ruler.verify import verify_rule, verify_vector_rule


@pytest.fixture(scope="module")
def dios(spec):
    return DiospyrosCompiler(spec)


class TestHandRules:
    def test_rule_count_in_diospyros_ballpark(self, spec):
        # Diospyros hand-writes ~28 rules; ours is the same order.
        rules = diospyros_rules(spec)
        assert 20 <= len(rules) <= 45

    def test_all_hand_rules_sound(self, spec):
        from repro.lang.ops import OpKind
        from repro.lang.term import subterms

        def vectorish(rule):
            for side in (rule.lhs, rule.rhs):
                for sub in subterms(side):
                    if sub.op == "Vec":
                        return True
                    if (
                        spec.has_instruction(sub.op)
                        and spec.instruction(sub.op).kind is OpKind.VECTOR
                    ):
                        return True
            return False

        for rule in diospyros_rules(spec):
            if vectorish(rule):
                assert verify_vector_rule(
                    rule.lhs, rule.rhs, spec, n_samples=12
                ).ok, str(rule)
            else:
                assert verify_rule(
                    rule.lhs, rule.rhs, spec, n_samples=32, seed=17
                ).ok, str(rule)

    def test_contains_the_canonical_lift(self, spec):
        texts = {str(r) for r in diospyros_rules(spec)}
        assert any("=> (VecAdd" in t and t.startswith("(Vec (+")
                   for t in texts)


class TestDiospyrosCompile:
    def test_intro_example_vectorizes(self, dios):
        # The paper's §2.1 program.
        program = parse(
            "(List (Vec (+ (Get x 0) (Get y 0)) (+ (Get x 1) (Get y 1))"
            " (+ (Get x 2) (Get y 2)) (Get x 3)))"
        )
        compiled, report = dios.compile(program)
        assert compiled.args[0].op == "VecAdd"
        assert report.final_cost < report.initial_cost / 10

    @pytest.mark.parametrize(
        "instance",
        [
            quaternion_product_kernel(),
            matmul_kernel(2, 2, 2),
            conv2d_kernel(3, 3, 2, 2),
        ],
        ids=lambda k: k.key,
    )
    def test_compiled_kernels_correct(self, spec, dios, instance):
        compiled, _report = dios.compile(instance.program.term)
        machine_prog = lower_program(
            compiled, spec, instance.program.arrays
        )
        inputs = instance.make_inputs(2)
        result = Machine(spec).run(
            machine_prog, padded_memory(instance, inputs)
        )
        got = result.array("out")[: instance.output_len]
        want = run_reference(instance, inputs)
        assert np.allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_improves_over_scalar_cost(self, dios, spec):
        instance = matmul_kernel(2, 2, 2)
        _compiled, report = dios.compile(instance.program.term)
        assert report.final_cost < report.initial_cost
        assert report.rounds
        assert report.elapsed > 0
