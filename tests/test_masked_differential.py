"""Differential testing of masked compilation (ISA family ``masked``).

Real kernels with non-lane-multiple outputs (conv2d and matmul at
5x5- and 6x6-class sizes, 25- and 36-element results) are compiled
once per width on the masked family,
then hypothesis sweeps randomized inputs through three evaluators:

1. the cycle simulator running the compiled machine code,
2. the scalar interpreter evaluating the *compiled* vector term,
3. the independent numpy reference.

(1) and (2) must agree **exactly** on the active output prefix — the
masked lowering may zero dead padding lanes but must not perturb a
single live float.  (1) vs (3) is held to the usual allclose
tolerance, since saturation legitimately reassociates arithmetic.
Every compiled program must also carry a masked store tail and no
scalar store epilogue.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.compile import CompileOptions
from repro.core.pregen import family_compiler
from repro.egraph.runner import RunnerLimits
from repro.isa import masked_spec
from repro.kernels import (
    conv2d_kernel,
    matmul_kernel,
    padded_memory,
    run_reference,
)

_WIDTHS = (8, 16)


def _options() -> CompileOptions:
    return CompileOptions(
        max_rounds=1,
        expansion_limits=RunnerLimits(
            max_iterations=2, max_nodes=2_000, time_limit=2.0
        ),
        compilation_limits=RunnerLimits(
            max_iterations=4, max_nodes=4_000, time_limit=2.0
        ),
        optimization_limits=RunnerLimits(
            max_iterations=2, max_nodes=2_000, time_limit=2.0
        ),
    )


def _instances(width: int) -> dict:
    # Output sizes 25 (5×5) and 36 (6×6): neither is a multiple of 8
    # or 16, so every (kernel, width) pair here needs a masked tail.
    return {
        "conv2d-5x5": conv2d_kernel(4, 4, 2, 2, width=width),
        "conv2d-6x6": conv2d_kernel(5, 5, 2, 2, width=width),
        "matmul-5x5": matmul_kernel(5, 5, 5, width=width),
        "matmul-6x6": matmul_kernel(6, 6, 6, width=width),
    }


_CACHE: dict = {}


def _compiled(width: int, kernel: str):
    """(instance, CompiledKernel) — compiled once per (width, kernel)."""
    key = (width, kernel)
    if key not in _CACHE:
        spec_key = ("compiler", width)
        if spec_key not in _CACHE:
            _CACHE[spec_key] = family_compiler(
                masked_spec(width), compile_options=_options()
            )
        compiler = _CACHE[spec_key]
        instance = _instances(width)[kernel]
        _CACHE[key] = (instance, compiler.compile_kernel(instance))
    return _CACHE[key]


_KERNELS = ("conv2d-5x5", "conv2d-6x6", "matmul-5x5", "matmul-6x6")


@pytest.mark.parametrize("width", _WIDTHS)
@pytest.mark.parametrize("kernel", _KERNELS)
def test_masked_tail_without_scalar_epilogue(width, kernel):
    instance, compiled = _compiled(width, kernel)
    assert instance.output_len % width != 0  # the premise of the test
    ops = [i.opcode for i in compiled.machine_program.instrs]
    assert "v.store.m" in ops, "no masked store tail"
    assert "s.store" not in ops, "scalar store epilogue survived"
    # Lane counters land on the CompileReport after a run.
    compiled.run(instance.make_inputs(0))
    report = compiled.report
    assert report.lanes_issued and report.lane_utilization > 0.5


@pytest.mark.parametrize("width", _WIDTHS)
@pytest.mark.parametrize("kernel", _KERNELS)
@given(seed=st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_masked_output_matches_interpreter_exactly(width, kernel, seed):
    instance, compiled = _compiled(width, kernel)
    inputs = instance.make_inputs(seed)
    n = instance.output_len

    result = compiled.run(inputs)
    machine_out = result.array(compiled.output)[:n]

    # The scalar interpreter evaluating the compiled vector term on
    # the same padded inputs is the value-identity oracle: identical
    # operations in identical order, so floats must match bit-exactly.
    interp = compiled.spec.interpreter()
    env = {
        name: values
        for name, values in padded_memory(instance, inputs).items()
        if name != compiled.output
    }
    chunks = interp.evaluate(compiled.compiled_term, env)
    interp_out = [
        float(lane) for chunk in chunks for lane in chunk
    ][:n]
    assert machine_out == interp_out

    want = run_reference(instance, inputs)
    assert np.allclose(machine_out, want, rtol=1e-9, atol=1e-9)

    # Lane accounting: a masked run still issues full-width bundles.
    assert result.masked_ops > 0
    assert 0.5 < result.lane_utilization <= 1.0
