"""A small end-to-end §5.4 workflow at test-friendly scale.

The full Table 2 experiment lives in benchmarks/; this test runs the
same workflow with a reduced neighbourhood and a tiny kernel, checking
that (1) the custom compiler is generated without hand-written rules,
(2) the compiled kernel is correct, and (3) the custom instruction is
actually used when the kernel is its exact pattern.
"""

import numpy as np
import pytest

from repro.compiler.frontend import trace_kernel, sym_sgn, sym_sqrt
from repro.core import GeneratedCompiler
from repro.core.customize import merge_rules, synthesize_custom_rules
from repro.isa import customized_spec
from repro.kernels.specs import padded_memory
from repro.lang.term import subterms
from repro.machine import Machine
from repro.phases import CostModel, assign_phases, default_params


@pytest.fixture(scope="module")
def custom_compiler(spec, synthesis_size4):
    custom = customized_spec(spec, sqrtsgn=True)
    focused = synthesize_custom_rules(
        custom,
        ("sqrtsgn", "VecSqrtSgn"),
        neighbourhood=("*", "sqrt", "sgn", "neg"),
        max_term_size=6,
        time_budget=90.0,
    )
    rules = merge_rules(synthesis_size4.rules, focused)
    cost_model = CostModel(custom)
    return GeneratedCompiler(
        spec=custom,
        cost_model=cost_model,
        ruleset=assign_phases(cost_model, rules, default_params(custom)),
    )


def sqrtsgn_kernel(x, y):
    """Four lanes of the exact sqrt-sign-product pattern."""
    return [sym_sqrt(x[i]) * sym_sgn(-y[i]) for i in range(4)]


@pytest.mark.slow
class TestCustomWorkflow:
    def test_kernel_uses_custom_instruction(self, custom_compiler):
        program = trace_kernel(
            "ssgn", sqrtsgn_kernel, {"x": 4, "y": 4},
            custom_compiler.spec.vector_width,
        )
        kernel = custom_compiler.compile_kernel(program)
        used_ops = {s.op for s in subterms(kernel.compiled_term)}
        assert "VecSqrtSgn" in used_ops or "sqrtsgn" in used_ops

    def test_compiled_kernel_correct(self, custom_compiler):
        program = trace_kernel(
            "ssgn", sqrtsgn_kernel, {"x": 4, "y": 4},
            custom_compiler.spec.vector_width,
        )
        kernel = custom_compiler.compile_kernel(program)
        machine = Machine(custom_compiler.spec)
        memory = {
            "x": [4.0, 9.0, 16.0, 0.25],
            "y": [-1.0, 2.0, -3.0, 4.0],
            "out": [0.0] * 4,
        }
        result = machine.run(kernel.machine_program, memory)
        want = [2.0, -3.0, 4.0, -0.5]
        assert np.allclose(result.array("out"), want)
