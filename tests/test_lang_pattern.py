"""Unit tests for pattern matching, substitution, renaming."""

import pytest

from repro.lang import builders as B
from repro.lang.parser import parse
from repro.lang.pattern import (
    contains_op,
    instantiate,
    is_ground,
    match,
    rename_wildcards,
    suffix_wildcards,
    wildcards_of,
)


class TestWildcardsOf:
    def test_order_is_first_occurrence(self):
        pattern = parse("(+ (* ?b ?a) ?b)")
        assert wildcards_of(pattern) == ("b", "a")

    def test_ground(self):
        assert is_ground(parse("(+ 1 (Get x 0))"))
        assert not is_ground(parse("(+ 1 ?a)"))


class TestInstantiate:
    def test_basic(self):
        pattern = parse("(+ ?a (neg ?b))")
        result = instantiate(
            pattern, {"a": B.const(1), "b": B.get("x", 0)}
        )
        assert result == parse("(+ 1 (neg (Get x 0)))")

    def test_missing_binding_raises(self):
        with pytest.raises(KeyError):
            instantiate(parse("(+ ?a ?b)"), {"a": B.const(1)})

    def test_no_change_reuses_term(self):
        ground = parse("(+ 1 2)")
        assert instantiate(ground, {}) is ground


class TestMatch:
    def test_simple_binding(self):
        binding = match(parse("(+ ?a ?b)"), parse("(+ 1 (Get x 0))"))
        assert binding == {"a": B.const(1), "b": B.get("x", 0)}

    def test_nonlinear_requires_equal(self):
        pattern = parse("(+ ?a ?a)")
        assert match(pattern, parse("(+ 2 2)")) == {"a": B.const(2)}
        assert match(pattern, parse("(+ 2 3)")) is None

    def test_structure_mismatch(self):
        assert match(parse("(+ ?a ?b)"), parse("(- 1 2)")) is None
        assert match(parse("(+ ?a 0)"), parse("(+ 1 2)")) is None

    def test_leaf_payload_match(self):
        assert match(parse("(Get x 0)"), parse("(Get x 0)")) == {}
        assert match(parse("(Get x 0)"), parse("(Get x 1)")) is None

    def test_match_then_instantiate_roundtrip(self):
        pattern = parse("(VecAdd ?a (Vec ?x ?y ?z ?w))")
        target = parse(
            "(VecAdd (Vec 1 2 3 4) (Vec (Get x 0) 5 6 (neg 7)))"
        )
        binding = match(pattern, target)
        assert binding is not None
        assert instantiate(pattern, binding) == target


class TestRename:
    def test_rename(self):
        pattern = parse("(+ ?a ?b)")
        renamed = rename_wildcards(pattern, {"a": "x"})
        assert renamed == parse("(+ ?x ?b)")

    def test_suffix(self):
        pattern = parse("(mac ?c ?a ?b)")
        assert suffix_wildcards(pattern, ".2") == parse(
            "(mac ?c.2 ?a.2 ?b.2)"
        )


class TestContainsOp:
    def test_contains(self):
        term = parse("(VecAdd (Vec 1 2 3 4) ?a)")
        assert contains_op(term, "Vec")
        assert contains_op(term, "VecAdd")
        assert not contains_op(term, "VecMul")
