"""Differential fuzz: batched cvec evaluation vs the legacy oracle.

The batched :class:`CvecEvaluator` must fingerprint every term exactly
as the legacy path (one tree interpretation per environment) does —
including UNDEFINED propagation through division by zero and the float
rounding that sqrt introduces — and the enumeration built on top of it
must produce identical pools, pairs, and synthesized rules, sharded or
not.  ``REPRO_LEGACY_CVEC=1`` selects the oracle.
"""

import random

import pytest

from repro.interp.value import UNDEFINED
from repro.isa import fusion_g3_spec
from repro.isa.custom import customized_spec
from repro.lang import builders as B
from repro.lang import term as T
from repro.lang.parser import parse
from repro.ruler.cvec import (
    CvecEvaluator,
    CvecSpec,
    cvec_of,
    legacy_cvec_requested,
)
from repro.ruler.enumerate import enumerate_terms
from repro.ruler.verify import verify_rule


def _specs():
    base = fusion_g3_spec()
    return [
        pytest.param(base, id="fusion-g3"),
        pytest.param(
            customized_spec(base, mulsub=True, sqrtsgn=True), id="custom"
        ),
    ]


def _random_term(rng, ops, atoms, depth):
    if depth == 0 or rng.random() < 0.3:
        return rng.choice(atoms)
    instr = rng.choice(ops)
    return T.make(
        instr.name,
        *(
            _random_term(rng, ops, atoms, depth - 1)
            for _ in range(instr.arity)
        ),
    )


class TestFlagParsing:
    def test_legacy_flag_truthiness(self, monkeypatch):
        for raw, expected in (
            ("1", True), ("true", True), ("YES", True), (" on ", True),
            ("0", False), ("", False), ("off", False),
        ):
            monkeypatch.setenv("REPRO_LEGACY_CVEC", raw)
            assert legacy_cvec_requested() is expected
        monkeypatch.delenv("REPRO_LEGACY_CVEC")
        assert legacy_cvec_requested() is False


class TestFingerprintParity:
    @pytest.mark.parametrize("spec", _specs())
    def test_randomized_terms_agree(self, spec):
        interp = spec.interpreter()
        grid = CvecSpec.make(("a", "b"), n_random=12, seed=3)
        evaluator = CvecEvaluator(interp, grid.envs)
        rng = random.Random(1234)
        atoms = [
            B.symbol("a"), B.symbol("b"),
            B.const(0), B.const(1), B.const(2),
        ]
        ops = list(spec.instructions)
        for _ in range(200):
            term = _random_term(rng, ops, atoms, 4)
            legacy = cvec_of(term, interp, grid)
            batched = evaluator.fingerprint_of(evaluator.row_of(term))
            assert batched == legacy, term

    def test_undefined_propagates_lanewise(self, spec):
        # b = 0 appears in the corner envs: (/ a b) is undefined there
        # and defined elsewhere, in exactly the same positions.
        interp = spec.interpreter()
        grid = CvecSpec.make(("a", "b"), n_random=8, seed=5)
        evaluator = CvecEvaluator(interp, grid.envs)
        term = parse("(/ a b)")
        row = evaluator.row_of(term)
        assert any(value is UNDEFINED for value in row)
        assert any(value is not UNDEFINED for value in row)
        assert evaluator.fingerprint_of(row) == cvec_of(
            term, interp, grid
        )

    def test_all_undefined_matches_oracle_discard(self, spec):
        interp = spec.interpreter()
        grid = CvecSpec.make(("a",), n_random=4, seed=1)
        evaluator = CvecEvaluator(interp, grid.envs)
        term = parse("(/ a 0)")
        assert evaluator.fingerprint_of(evaluator.row_of(term)) is None
        assert cvec_of(term, interp, grid) is None

    def test_sqrt_float_rounding_matches(self, spec):
        # sqrt of a non-square yields floats; the fingerprint rounds
        # them identically on both paths.
        interp = spec.interpreter()
        grid = CvecSpec.make(("a", "b"), n_random=12, seed=7)
        evaluator = CvecEvaluator(interp, grid.envs)
        for text in (
            "(sqrt (* a a))",
            "(sqrt (+ (* a a) (* b b)))",
            "(VecSqrt (VecMAC 0 a b))",
        ):
            term = parse(text)
            assert evaluator.fingerprint_of(
                evaluator.row_of(term)
            ) == cvec_of(term, interp, grid)

    def test_row_cache_reuses_children(self, spec):
        interp = spec.interpreter()
        grid = CvecSpec.make(("a", "b"), n_random=4, seed=0)
        evaluator = CvecEvaluator(interp, grid.envs)
        evaluator.row_of(parse("(+ a b)"))
        misses = evaluator.perf.cvec_cache_misses
        evaluator.row_of(parse("(* (+ a b) (+ a b))"))
        # Only the new root misses; (+ a b) and its leaves are cached,
        # and the shared child is one interned DAG node.
        assert evaluator.perf.cvec_cache_misses == misses + 1
        evaluator.row_of(parse("(+ a b)"))  # fully cached
        assert evaluator.perf.cvec_cache_hits > 0
        assert evaluator.perf.cvec_cache_misses == misses + 1


class TestEnumerationParity:
    @pytest.mark.parametrize("spec", _specs())
    def test_legacy_and_batched_identical(self, spec, monkeypatch):
        grid = CvecSpec.make(("a", "b"), n_random=8, seed=0)
        monkeypatch.setenv("REPRO_LEGACY_CVEC", "1")
        legacy = enumerate_terms(spec, grid, max_size=3)
        assert legacy.perf.backend == "legacy"
        monkeypatch.delenv("REPRO_LEGACY_CVEC")
        batched = enumerate_terms(spec, grid, max_size=3)
        assert batched.perf.backend == "batched"
        assert batched.representatives == legacy.representatives
        assert batched.pairs == legacy.pairs
        assert batched.n_enumerated == legacy.n_enumerated
        assert batched.aborted == legacy.aborted

    def test_sharded_matches_serial(self, spec, monkeypatch):
        # jobs=2 + REPRO_PARALLEL=2 force the shard/merge path even on
        # one CPU; parallel_map's fallback keeps it exercised when
        # process pools are unavailable.
        grid = CvecSpec.make(("a", "b"), n_random=8, seed=0)
        monkeypatch.setenv("REPRO_PARALLEL", "2")
        sharded = enumerate_terms(spec, grid, max_size=3, jobs=2)
        assert sharded.perf.enumeration_shards > 0
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        serial = enumerate_terms(spec, grid, max_size=3)
        assert sharded.representatives == serial.representatives
        # Pair ordering may interleave differently across shards; the
        # pair *set* (what candidate_rules consumes, which sorts) and
        # every count are identical.
        assert sorted(sharded.pairs, key=str) == sorted(
            serial.pairs, key=str
        )
        assert sharded.n_enumerated == serial.n_enumerated
        assert (
            sharded.perf.interned_fingerprints
            == serial.perf.interned_fingerprints
        )


class TestVerifyParity:
    _RULES = [
        ("(+ ?a ?b)", "(+ ?b ?a)", True),
        ("(* ?a 1)", "?a", True),
        ("(/ (* ?a ?b) ?b)", "?a", False),  # definedness differs
        ("(- ?a ?b)", "(+ ?a ?b)", False),
        ("(mac ?c ?a ?b)", "(+ ?c (* ?a ?b))", True),
        ("(sqrt (* ?a ?a))", "?a", False),  # fails for negative a
        ("(sgn (sgn ?a))", "(sgn ?a)", True),
    ]

    def test_batched_and_legacy_verdicts_agree(self, spec, monkeypatch):
        for lhs, rhs, expected in self._RULES:
            lhs, rhs = parse(lhs), parse(rhs)
            monkeypatch.delenv("REPRO_LEGACY_CVEC", raising=False)
            batched = verify_rule(lhs, rhs, spec)
            monkeypatch.setenv("REPRO_LEGACY_CVEC", "1")
            legacy = verify_rule(lhs, rhs, spec)
            assert batched.ok is legacy.ok is expected
            assert batched.method == legacy.method
            assert batched.detail == legacy.detail
