"""Coverage of every base-ISA instruction through the interpreter."""

import math
from fractions import Fraction

import pytest

from repro.interp.value import UNDEFINED
from repro.lang.parser import parse


@pytest.fixture(scope="module")
def interp(spec):
    return spec.interpreter()


class TestEveryScalarInstruction:
    @pytest.mark.parametrize(
        "text,env,expected",
        [
            ("(+ a b)", {"a": 3, "b": 4}, 7),
            ("(- a b)", {"a": 3, "b": 4}, -1),
            ("(* a b)", {"a": 3, "b": 4}, 12),
            ("(/ a b)", {"a": 3, "b": 4}, Fraction(3, 4)),
            ("(neg a)", {"a": 3}, -3),
            ("(sgn a)", {"a": -0.5}, -1),
            ("(sqrt a)", {"a": 2.25}, 1.5),
            ("(mac a b c)", {"a": 1, "b": 2, "c": 3}, 7),
        ],
    )
    def test_scalar(self, interp, text, env, expected):
        value = interp.evaluate(parse(text), env)
        if isinstance(expected, float):
            assert math.isclose(float(value), expected)
        else:
            assert value == expected


class TestEveryVectorInstruction:
    V1 = "(Vec 4 9 16 25)"
    V2 = "(Vec 2 3 4 5)"

    @pytest.mark.parametrize(
        "text,expected",
        [
            (f"(VecAdd {V1} {V2})", (6, 12, 20, 30)),
            (f"(VecMinus {V1} {V2})", (2, 6, 12, 20)),
            (f"(VecMul {V1} {V2})", (8, 27, 64, 125)),
            (f"(VecDiv {V1} {V2})", (2, 3, 4, 5)),
            (f"(VecNeg {V2})", (-2, -3, -4, -5)),
            (f"(VecSgn (VecNeg {V2}))", (-1, -1, -1, -1)),
            (f"(VecSqrt {V1})", (2, 3, 4, 5)),
            (f"(VecMAC {V2} {V2} {V2})", (6, 12, 20, 30)),
        ],
    )
    def test_vector(self, interp, text, expected):
        assert interp.evaluate(parse(text), {}) == expected

    def test_vecdiv_partial_undefined(self, interp):
        value = interp.evaluate(
            parse("(VecDiv (Vec 1 2 3 4) (Vec 1 0 1 1))"), {}
        )
        assert value is UNDEFINED

    def test_vecsqrt_negative_lane_undefined(self, interp):
        value = interp.evaluate(
            parse("(VecSqrt (Vec 1 -1 4 9))"), {}
        )
        assert value is UNDEFINED


class TestLatencyTable:
    def test_heavy_ops_have_higher_latency(self, spec):
        assert spec.instruction("/").latency > spec.instruction("+").latency
        assert (
            spec.instruction("sqrt").latency
            > spec.instruction("*").latency
        )
        assert (
            spec.instruction("VecSqrt").latency
            == spec.instruction("sqrt").latency
        )
