"""Differential test: pruned vs legacy unpruned ruleset parity.

``REPRO_LEGACY_COSTPRUNE=1`` switches the shipped-ruleset path back to
the full, unpruned rule file.  The pruned default must never compile
worse code: under deterministic fixpoint-style saturation budgets the
two rulesets close their e-graphs over the same terms (every dropped
rule is derivable from survivors), and canonical tie-breaking makes
extraction a function of that term set — so the compiled program
should be byte-identical, and must at minimum be equal-or-cheaper.
"""

from __future__ import annotations

import pytest

from repro.compiler.compile import CompileOptions
from repro.compiler.frontend import trace_kernel
from repro.core.pregen import default_compiler
from repro.egraph.runner import RunnerLimits
from repro.isa import fusion_g3_spec

_LENGTH = 8


def _fixpoint_options() -> CompileOptions:
    def fix(iterations: int, nodes: int) -> RunnerLimits:
        return RunnerLimits(
            max_iterations=iterations,
            max_nodes=nodes,
            time_limit=600.0,
            match_limit=10**9,
            ban_length=0,
            match_work=10**9,
        )

    return CompileOptions(
        max_rounds=1,
        expansion_limits=fix(2, 2_000),
        compilation_limits=fix(4, 4_000),
        optimization_limits=fix(2, 2_000),
    )


def _mac_program():
    def mac(a, b, c):
        return [a[i] * b[i] + c[i] for i in range(_LENGTH)]

    return trace_kernel(
        "ew-mac-8", mac,
        {"a": _LENGTH, "b": _LENGTH, "c": _LENGTH}, width=4,
    ), mac


@pytest.fixture()
def compiled_pair(monkeypatch):
    """(full, pruned) compile results for the same kernel."""
    program, mac = _mac_program()
    spec = fusion_g3_spec()
    options = _fixpoint_options()
    results = {}
    for mode in ("full", "pruned"):
        if mode == "full":
            monkeypatch.setenv("REPRO_LEGACY_COSTPRUNE", "1")
        else:
            monkeypatch.delenv("REPRO_LEGACY_COSTPRUNE")
        compiler = default_compiler(spec, compile_options=options)
        compiled = compiler.compile_kernel(program, validate=False)
        results[mode] = {
            "n_rules": len(compiler.ruleset),
            "term": str(compiled.compiled_term),
            "cost": compiler.cost_model.term_cost(
                compiled.compiled_term
            ),
            "compiled": compiled,
            "reference": mac,
        }
    return results


def test_pruned_ruleset_is_smaller(compiled_pair):
    assert (
        compiled_pair["pruned"]["n_rules"]
        < compiled_pair["full"]["n_rules"]
    )


def test_pruned_compile_is_equal_or_cheaper(compiled_pair):
    full, pruned = compiled_pair["full"], compiled_pair["pruned"]
    assert pruned["cost"] <= full["cost"], (
        f"pruned ruleset compiled a costlier program "
        f"({pruned['cost']} vs {full['cost']})"
    )
    assert (
        pruned["term"] == full["term"]
        or pruned["cost"] < full["cost"]
    ), "pruned output differs without being cheaper"


def test_pruned_compile_is_correct(compiled_pair):
    pruned = compiled_pair["pruned"]
    inputs = {
        "a": [float(i + 1) for i in range(_LENGTH)],
        "b": [float(2 * i - 3) for i in range(_LENGTH)],
        "c": [float(i * i % 7) for i in range(_LENGTH)],
    }
    result = pruned["compiled"].run(inputs)
    got = list(result.memory[pruned["compiled"].output][:_LENGTH])
    want = [
        float(x)
        for x in pruned["reference"](inputs["a"], inputs["b"], inputs["c"])
    ]
    assert got == want
