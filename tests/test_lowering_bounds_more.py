"""Lowering bounds-checking and fallback behaviour."""

import pytest

from repro.compiler.lowering import LoweringError, lower_program
from repro.interp.interpreter import EvalError, Interpreter
from repro.lang.parser import parse
from repro.machine import Machine


class TestWindowBounds:
    def test_tail_window_of_padded_array_usable(self, spec):
        # x has 5 elements (padded to 8): window [4..8) is in padded
        # bounds, so the shuffle path may use it.
        text = "(List (Vec (Get x 4) (Get x 4) (Get x 4) (Get x 4)))"
        program = lower_program(parse(text), spec, {"x": 5})
        machine = Machine(spec)
        result = machine.run(
            program,
            {"x": [0.0, 0.0, 0.0, 0.0, 9.0, 0.0, 0.0, 0.0],
             "out": [0.0] * 4},
        )
        assert result.array("out") == [9.0] * 4

    def test_get_index_in_padding_region_allowed(self, spec):
        # Index 5 of a 5-long array is within the padded region: the
        # compiler may have rewritten a zero there; reads are safe
        # because the harness zero-pads.
        text = "(List (Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3)))"
        lower_program(parse(text), spec, {"x": 5})  # no error

    def test_negative_index_rejected(self, spec):
        with pytest.raises((LoweringError, ValueError)):
            from repro.lang import builders as B

            bad = B.prog(
                B.vec(B.get("x", -1), B.const(0), B.const(0),
                      B.const(0))
            )
            lower_program(bad, spec, {"x": 4})


class TestInterpreterConfigErrors:
    def test_missing_semantics_raises(self):
        from repro.lang.ops import OpKind

        interp = Interpreter({}, {})
        with pytest.raises(EvalError):
            interp.evaluate(parse("(+ 1 2)"), {})

    def test_vector_kind_scalar_args_single_lane(self, spec):
        # the §3.1 reduction works through a hand-built interpreter too
        from repro.lang.ops import OpKind

        interp = Interpreter(
            {"VecAdd": lambda a, b: a + b},
            {"VecAdd": OpKind.VECTOR},
        )
        assert interp.evaluate(parse("(VecAdd 2 3)"), {}) == 5


class TestMachineConfig:
    def test_custom_instruction_budget(self, spec):
        from repro.machine import ProgramBuilder, SimulationError

        machine = Machine(spec, max_instructions=3)
        b = ProgramBuilder()
        for i in range(5):
            b.s_const(float(i))
        b.halt()
        with pytest.raises(SimulationError):
            machine.run(b.build(), {})

    def test_vector_width_property(self, spec):
        assert Machine(spec).vector_width == spec.vector_width
