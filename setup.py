"""Legacy setup shim.

The modern build path (PEP 660 editable installs) requires the
``wheel`` package; on fully offline machines without it, use

    pip install -e . --no-use-pep517 --no-build-isolation

which goes through this shim instead.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
